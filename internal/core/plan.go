// Package core implements the paper's memory-management technique (§3.3):
// the analyser that matches every layer of a network with the policy that
// best serves the optimisation objective under the GLB size constraint
// (paper Algorithm 1 and its latency-objective counterpart), producing
// homogeneous or heterogeneous execution plans, optionally extended with
// inter-layer reuse (§5.4).
package core

import (
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/smmerr"
)

// Objective selects what the analyser minimises.
type Objective int

const (
	// MinAccesses minimises off-chip traffic, breaking ties on latency
	// (paper Algorithm 1).
	MinAccesses Objective = iota
	// MinLatency minimises estimated latency, breaking ties on traffic.
	MinLatency
)

// String names the objective the way the paper's figure legends do.
func (o Objective) String() string {
	if o == MinLatency {
		return "latency"
	}
	return "accesses"
}

// LayerPlan is the analyser's decision for one layer.
type LayerPlan struct {
	Layer layer.Layer
	Est   policy.Result
	// ConsumesResident is true when the layer reads its ifmap from the GLB
	// (previous layer's retained ofmap) instead of off-chip memory.
	ConsumesResident bool
	// KeepsResident is true when the layer's whole ofmap stays in the GLB
	// for the next layer (inter-layer reuse producer).
	KeepsResident bool
}

// Plan is a per-layer execution plan for a whole network — the paper's
// "management scheme".
type Plan struct {
	Model     string
	Cfg       policy.Config
	Objective Objective
	// Scheme describes how the plan was built ("het", "hom <policy>").
	Scheme string
	Layers []LayerPlan
	// ChainableTransitions counts layer transitions whose shapes chain
	// (the denominator of the paper's inter-layer-reuse coverage).
	ChainableTransitions int
	// Degraded is true when the requested policy set was infeasible and the
	// plan comes from a lower rung of the degradation ladder (degrade.go).
	Degraded bool
	// DegradedMode names the rung that produced a degraded plan.
	DegradedMode string
	// DegradedReasons records, in ladder order, every rung that failed
	// before DegradedMode succeeded — the machine-readable reason chain.
	DegradedReasons []DegradedReason
	// Schedule, set only for DAG-planned models (graphplan.go), maps plan
	// position to source graph node: Layers[k] runs graph node Schedule[k].
	Schedule []int
	// Tensors, set only for DAG-planned models, is the tensor-lifetime
	// table: every produced tensor's live interval and, when resident, its
	// concrete GLB address range and otherwise its spill decision.
	Tensors []TensorPlan
}

// AccessElems returns the plan's total off-chip traffic in elements.
func (p *Plan) AccessElems() int64 {
	var t int64
	for i := range p.Layers {
		t += p.Layers[i].Est.AccessElems
	}
	return t
}

// AccessBytes returns the plan's total off-chip traffic in bytes.
func (p *Plan) AccessBytes() int64 {
	var t int64
	for i := range p.Layers {
		t += p.Layers[i].Est.AccessBytes
	}
	return t
}

// LatencyCycles returns the plan's total estimated latency.
func (p *Plan) LatencyCycles() int64 {
	var t int64
	for i := range p.Layers {
		t += p.Layers[i].Est.LatencyCycles
	}
	return t
}

// MaxMemoryBytes returns the largest per-layer GLB footprint of the plan.
func (p *Plan) MaxMemoryBytes() int64 {
	var m int64
	for i := range p.Layers {
		if b := p.Layers[i].Est.MemoryBytes; b > m {
			m = b
		}
	}
	return m
}

// Feasible reports whether every layer fits the GLB.
func (p *Plan) Feasible() bool {
	for i := range p.Layers {
		if !p.Layers[i].Est.Feasible {
			return false
		}
	}
	return true
}

// PolicyMix returns the distinct policy variants the plan uses, in first-use
// order — the contents of the paper's Table 4 rows.
func (p *Plan) PolicyMix() []string {
	seen := make(map[string]bool)
	var mix []string
	for i := range p.Layers {
		v := policy.Variant(p.Layers[i].Est.Policy, p.Layers[i].Est.Opts.Prefetch)
		if !seen[v] {
			seen[v] = true
			mix = append(mix, v)
		}
	}
	return mix
}

// PrefetchCoverage returns the fraction of layers whose chosen variant
// prefetches (paper Figure 10 parentheses).
func (p *Plan) PrefetchCoverage() float64 {
	if len(p.Layers) == 0 {
		return 0
	}
	n := 0
	for i := range p.Layers {
		if p.Layers[i].Est.Opts.Prefetch {
			n++
		}
	}
	return float64(n) / float64(len(p.Layers))
}

// InterLayerCoverage returns the fraction of chainable transitions where
// the producer keeps its ofmap resident (paper Figure 11 parentheses).
func (p *Plan) InterLayerCoverage() float64 {
	if p.ChainableTransitions == 0 {
		return 0
	}
	n := 0
	for i := range p.Layers {
		if p.Layers[i].KeepsResident {
			n++
		}
	}
	return float64(n) / float64(p.ChainableTransitions)
}

// objectiveKey orders estimates lexicographically by (primary, secondary)
// according to the plan objective: Algorithm 1 minimises accesses and
// breaks ties on latency; the latency variant swaps the two.
func objectiveKey(o Objective, e *policy.Result) (int64, int64) {
	if o == MinLatency {
		return e.LatencyCycles, e.AccessElems
	}
	return e.AccessElems, e.LatencyCycles
}

// better reports whether a beats b under the objective.
func better(o Objective, a, b *policy.Result) bool {
	ap, as := objectiveKey(o, a)
	bp, bs := objectiveKey(o, b)
	if ap != bp {
		return ap < bp
	}
	return as < bs
}

// chainable reports whether layer b can consume layer a's ofmap directly
// from the GLB: the tensor shapes must line up exactly.
func chainable(a, b *layer.Layer) bool {
	return a.OH() == b.IH && a.OW() == b.IW && a.CO() == b.CI
}

// countChainable returns the number of chainable transitions in a network.
func countChainable(n *model.Network) int {
	c := 0
	for i := 0; i+1 < len(n.Layers); i++ {
		if chainable(&n.Layers[i], &n.Layers[i+1]) {
			c++
		}
	}
	return c
}

// InfeasibleError reports that a layer cannot be scheduled within the GLB
// even with fallback tiling. It now lives in internal/smmerr so every
// pipeline stage shares one taxonomy; the alias keeps core's historical
// name working (errors.As with either spelling matches the same type).
type InfeasibleError = smmerr.InfeasibleError
