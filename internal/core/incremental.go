// Incremental (differential) planning: most serving traffic — DSE sweeps,
// batch requests, multi-tenant re-plans — consists of near-identical
// neighbors of networks the server has already planned. A Checkpoint
// captures the reusable state of one heterogeneous run (the shape chain,
// the per-layer decisions and, in inter-layer mode, the full DP table);
// HeterogeneousDiffCtx resumes from it so only the changed layers are
// re-estimated. The contract is strict: a spliced plan is byte-identical
// (canonical PlanDoc JSON) to what from-scratch planning would produce —
// reuse happens only where the DP provably makes the same decisions.
package core

import (
	"context"

	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/smmerr"
)

// Checkpoint is the immutable residue of one successful heterogeneous
// planning run, sufficient to resume a neighbor's plan. Safe for concurrent
// reuse by any number of later runs.
type Checkpoint struct {
	cfg             policy.Config
	objective       Objective
	disablePrefetch bool
	interLayer      bool

	chain  []policy.LayerKey // per-layer shape signatures, names excluded
	layers []LayerPlan       // the run's decisions (aliases the plan's Layers)
	dp     [][2]dpCell       // inter-layer mode only
}

// Chain returns the shape-signature chain of the checkpointed network,
// for indexing. Callers must not mutate it.
func (ck *Checkpoint) Chain() []policy.LayerKey { return ck.chain }

// compatible reports whether ck was captured under exactly the planner's
// knobs — the precondition for any reuse. The estimators are pure functions
// of (shape, options, config), so matching knobs plus matching shapes mean
// matching per-layer sweeps.
func (ck *Checkpoint) compatible(pl *Planner) bool {
	return ck != nil && ck.cfg == pl.Cfg && ck.objective == pl.Objective &&
		ck.disablePrefetch == pl.DisablePrefetch && ck.interLayer == pl.InterLayer
}

// DiffStats reports how much of an incremental plan was reused.
type DiffStats struct {
	// Outcome is "spliced" when at least one layer decision was reused
	// from the checkpoint, "full" otherwise.
	Outcome string
	// LayersReused counts output layers whose decisions were spliced from
	// the checkpoint without re-running their sweeps.
	LayersReused int
}

// Outcome values of DiffStats (and of the server's
// smm_incremental_plans_total label).
const (
	OutcomeSpliced = "spliced"
	OutcomeFull    = "full"
)

// Differ is the context-carried seam between the façade's planning ladder
// and a caller-owned fingerprint index (the server's, or one /v1/plan/batch
// request's). Lookup is consulted with the request's shape chain before
// planning; afterwards the planner reports the reuse outcome and the fresh
// checkpoint back through the struct. One Differ serves exactly one
// planning call — install a new one per request.
type Differ struct {
	// Lookup returns the best-overlapping checkpoint for the chain, or nil.
	// May be nil (capture-only). Incompatible checkpoints are tolerated —
	// the planner re-checks knob compatibility before reuse.
	Lookup func(chain []policy.LayerKey) *Checkpoint

	// Outcome and LayersReused mirror the run's DiffStats; Checkpoint is
	// the capture for future neighbors. All three stay zero when the run
	// failed or bypassed the differential path (homogeneous, greedy,
	// progress-observed).
	Outcome      string
	LayersReused int
	Checkpoint   *Checkpoint
}

type differCtxKey struct{}

// WithDiffer returns a context carrying d. Installing nil detaches any
// inherited differ (the degradation ladder does this after the requested
// rung, so relaxed re-plans are never indexed or counted).
func WithDiffer(ctx context.Context, d *Differ) context.Context {
	return context.WithValue(ctx, differCtxKey{}, d)
}

// DifferFrom returns the context's differ, or nil.
func DifferFrom(ctx context.Context) *Differ {
	d, _ := ctx.Value(differCtxKey{}).(*Differ)
	return d
}

// HeterogeneousDiffCtx is HeterogeneousCtx with differential planning: when
// ck — a checkpoint of a previous run under identical planner knobs —
// shares a layer-shape prefix and/or suffix with n, only the changed span
// is re-estimated and the cached decisions are spliced in. The returned
// plan is byte-identical to HeterogeneousCtx's, and a fresh checkpoint of
// this run is returned for future neighbors (nil in greedy mode, which
// falls back to full planning). prog-style observation is unsupported here
// by design: callers that stream progress want the full walk.
func (pl *Planner) HeterogeneousDiffCtx(ctx context.Context, n *model.Network, ck *Checkpoint) (*Plan, *Checkpoint, DiffStats, error) {
	stats := DiffStats{Outcome: OutcomeFull}
	if pl.InterLayer && pl.InterLayerGreedy {
		p, err := pl.HeterogeneousCtx(ctx, n, nil)
		return p, nil, stats, err
	}
	if err := pl.Cfg.Validate(); err != nil {
		return nil, nil, stats, smmerr.BadModel(err)
	}
	if err := n.Validate(); err != nil {
		return nil, nil, stats, smmerr.BadModel(err)
	}
	plan := &Plan{
		Model: n.Name, Cfg: pl.Cfg, Objective: pl.Objective,
		Scheme:               "het",
		ChainableTransitions: countChainable(n),
	}
	chain := policy.ChainOf(n.Layers)
	var (
		out []LayerPlan
		dp  [][2]dpCell
		err error
	)
	switch {
	case ck.compatible(pl) && pl.InterLayer:
		out, dp, err = pl.interLayerDPResume(ctx, n, chain, ck, &stats)
	case ck.compatible(pl):
		out, err = pl.independentResume(ctx, n, chain, ck, &stats)
	case pl.InterLayer:
		out, dp, err = pl.interLayerDPKeep(ctx, n, nil, true)
	default:
		out, err = pl.independentLayers(ctx, n, nil)
	}
	if err != nil {
		return nil, nil, stats, err
	}
	plan.Layers = out
	nck := &Checkpoint{
		cfg: pl.Cfg, objective: pl.Objective,
		disablePrefetch: pl.DisablePrefetch, interLayer: pl.InterLayer,
		chain: chain,
		// The checkpoint aliases the plan's layer slice rather than copying
		// it: plans are immutable by convention (plancache already shares
		// one *Plan across concurrent requests), and copying ~6KB per plan
		// was half the splice path's allocation cost.
		layers: out,
		dp:     dp,
	}
	return plan, nck, stats, nil
}

// spliceLayer copies a checkpointed decision into the new plan, re-patching
// the layer identity: shape chains ignore names, so the matched cached
// layer may be an identically-shaped layer under a different name.
func spliceLayer(dst, src *LayerPlan, l *layer.Layer) {
	*dst = *src
	dst.Layer = *l
	dst.Est.Layer = l.Name
}

// overlap computes the matched prefix p and suffix s of the new chain a
// against the cached chain b, clamping so the two spans cover each position
// of either chain at most once (a layer matched by both ends is taken as
// prefix).
func overlap(a, b []policy.LayerKey) (p, s int) {
	p = policy.CommonPrefix(a, b)
	s = policy.CommonSuffix(a, b)
	if n := min(len(a), len(b)); p+s > n {
		s = n - p
	}
	return p, s
}

// independentResume is independentLayers reusing a compatible checkpoint:
// without inter-layer state every layer's decision is a pure function of
// (shape, config, options), so decisions for shape-matched prefix and
// suffix layers splice verbatim and only the middle span is re-swept.
func (pl *Planner) independentResume(ctx context.Context, n *model.Network, chain []policy.LayerKey, ck *Checkpoint, stats *DiffStats) ([]LayerPlan, error) {
	L, Lc := len(chain), len(ck.chain)
	p, s := overlap(chain, ck.chain)
	if p == 0 && s == 0 {
		return pl.independentLayers(ctx, n, nil)
	}
	out := make([]LayerPlan, L)
	for i := 0; i < p; i++ {
		spliceLayer(&out[i], &ck.layers[i], &n.Layers[i])
	}
	for i := L - s; i < L; i++ {
		spliceLayer(&out[i], &ck.layers[i-L+Lc], &n.Layers[i])
	}
	for i := p; i < L-s; i++ {
		if err := layerGate(ctx); err != nil {
			return nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		out[i].Layer = n.Layers[i]
		e := &out[i].Est
		pl.bestForLayerInto(e, n, i, false, false)
		if !e.Feasible {
			// Spliced layers were feasible in the cached run, so this is
			// also the first infeasible layer the full walk would report.
			return nil, smmerr.Layer(i, n.Layers[i].Name,
				&smmerr.InfeasibleError{Model: n.Name, Layer: n.Layers[i].Name, Need: e.MemoryBytes, Have: pl.Cfg.GLBBytes})
		}
	}
	stats.Outcome, stats.LayersReused = OutcomeSpliced, p+s
	return out, nil
}

// uniformShift reports whether row a (the resumed run) differs from row b
// (the cached run) only by one additive (prim, sec) shift across its
// reachable states, with identical reachability. Every DP comparison —
// within a row, and the terminal pick — is invariant under such a shift,
// so from a uniformly-shifted row onward (over identical layers) the two
// runs make identical decisions.
func uniformShift(a, b *[2]dpCell) bool {
	if a[0].ok != b[0].ok || a[1].ok != b[1].ok {
		return false
	}
	if !a[0].ok && !a[1].ok {
		return false // dead row: the run is infeasible, report it fully
	}
	if a[0].ok && a[1].ok {
		return a[0].prim-b[0].prim == a[1].prim-b[1].prim &&
			a[0].sec-b[0].sec == a[1].sec-b[1].sec
	}
	return true // single live state: one shift by construction
}

// interLayerDPResume is interLayerDPKeep reusing a compatible checkpoint.
// Two reuse seams, both exact:
//
//   - Prefix resume: dp[j] depends only on layers[0..j] (the keep decision
//     at step j-1 peeks at layer j), so with a matched prefix of p layers
//     the cached rows dp[0..p-1] are this run's rows verbatim and the
//     recurrence resumes at step p-1.
//
//   - Suffix convergence: once inside the matched suffix, if a freshly
//     computed row is a uniform (prim, sec) shift of the cached run's
//     aligned row (uniformShift), all remaining transitions and the
//     terminal pick coincide — the cached tail decisions splice verbatim
//     and the remaining table rows are the cached rows plus the shift.
func (pl *Planner) interLayerDPResume(ctx context.Context, n *model.Network, chain []policy.LayerKey, ck *Checkpoint, stats *DiffStats) ([]LayerPlan, [][2]dpCell, error) {
	L, Lc := len(chain), len(ck.chain)
	p, s := overlap(chain, ck.chain)
	d := Lc - L // cached-table position offset of the matched suffix

	if p == L && L == Lc {
		// Identical chain (a rename, or a cache-key miss on metadata): the
		// whole cached run replays, table included.
		out := make([]LayerPlan, L)
		for i := range out {
			spliceLayer(&out[i], &ck.layers[i], &n.Layers[i])
		}
		stats.Outcome, stats.LayersReused = OutcomeSpliced, L
		return out, ck.dp, nil
	}

	dp := make([][2]dpCell, L+1) // captured by the new checkpoint: not pooled
	start := 0                   // first step to recompute
	if p > 0 {
		copy(dp[:p], ck.dp[:p])
		start = p - 1
	} else {
		dp[0][0] = dpCell{ok: true}
		dp[0][1] = dpCell{prim: dpInf, sec: dpInf}
	}

	conv := -1 // first recomputed position proven convergent with the cache
	for i := start; i < L; i++ {
		if err := layerGate(ctx); err != nil {
			return nil, nil, smmerr.Layer(i, n.Layers[i].Name, err)
		}
		dp[i+1] = pl.dpStep(n, i, &dp[i])
		if j := i + 1; s > 0 && j >= L-s && j < L && uniformShift(&dp[j], &ck.dp[j+d]) {
			conv = j
			break
		}
	}

	if conv < 0 {
		out, err := pl.dpFinish(n, dp)
		if err != nil {
			return nil, nil, err
		}
		if start > 0 {
			stats.Outcome, stats.LayersReused = OutcomeSpliced, start
		}
		return out, dp, nil
	}

	// Converged at position conv: splice the cached tail decisions, then
	// complete this run's table as cached-plus-shift so the checkpoint we
	// hand out is whole.
	var s0 int
	if !dp[conv][0].ok {
		s0 = 1
	}
	dPrim := dp[conv][s0].prim - ck.dp[conv+d][s0].prim
	dSec := dp[conv][s0].sec - ck.dp[conv+d][s0].sec
	for j := conv + 1; j <= L; j++ {
		row := ck.dp[j+d]
		for st := 0; st < 2; st++ {
			if row[st].ok {
				row[st].prim += dPrim
				row[st].sec += dSec
			}
		}
		dp[j] = row
	}
	out := make([]LayerPlan, L)
	for i := conv; i < L; i++ {
		spliceLayer(&out[i], &ck.layers[i+d], &n.Layers[i])
	}
	// The spliced decision at conv records which state the walk-back passes
	// through there; continue it through the recomputed head.
	entry := 0
	if out[conv].ConsumesResident {
		entry = 1
	}
	dpWalkBack(n, dp, out, conv, entry)
	reused := L - conv
	if start > 0 {
		reused += start
	}
	stats.Outcome, stats.LayersReused = OutcomeSpliced, reused
	return out, dp, nil
}
