// Package energy estimates the energy cost of an execution plan. The paper
// motivates access reduction with the 10-100x energy gap between off-chip
// transfers and local operations (§2.3); this package makes that gap
// explicit so access reductions can be reported in picojoules. It is an
// extension over the paper, which reports accesses and latency only.
package energy

import (
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
)

// Model holds per-operation energies in picojoules. The defaults follow the
// widely used 45 nm figures (Horowitz, ISSCC'14) scaled to 8-bit datapaths:
// a DRAM byte costs about two orders of magnitude more than a scratchpad
// byte, which costs a few times more than a MAC.
type Model struct {
	// DRAMPerByte is the off-chip transfer energy per byte.
	DRAMPerByte float64
	// GLBPerByte is the on-chip scratchpad access energy per byte.
	GLBPerByte float64
	// PerMAC is the multiply-accumulate energy (at the configured width).
	PerMAC float64
	// IfmapSpatialReuse and FilterSpatialReuse are the register-file /
	// array-level reuse factors: on an output-stationary RxC systolic
	// array each ifmap operand read from the GLB is consumed by C columns
	// and each weight by R rows, so GLB operand reads are MACs/C and
	// MACs/R rather than one per MAC. The paper's 16x16 array gives 16/16.
	IfmapSpatialReuse  float64
	FilterSpatialReuse float64
}

// Default returns the reference 8-bit model: 100 pJ/B DRAM, 1 pJ/B GLB,
// 0.3 pJ/MAC, 16x16-array spatial reuse.
func Default() Model {
	return Model{
		DRAMPerByte: 100, GLBPerByte: 1, PerMAC: 0.3,
		IfmapSpatialReuse: 16, FilterSpatialReuse: 16,
	}
}

// Validate checks the model.
func (m Model) Validate() error {
	if m.DRAMPerByte <= 0 || m.GLBPerByte <= 0 || m.PerMAC <= 0 {
		return fmt.Errorf("energy: non-positive coefficients %+v", m)
	}
	if m.IfmapSpatialReuse < 1 || m.FilterSpatialReuse < 1 {
		return fmt.Errorf("energy: spatial reuse factors must be >= 1, got %+v", m)
	}
	return nil
}

// Breakdown is the per-component energy of a plan or layer, in picojoules.
type Breakdown struct {
	DRAM    float64
	GLB     float64
	Compute float64
}

// Total returns the summed energy in picojoules.
func (b Breakdown) Total() float64 { return b.DRAM + b.GLB + b.Compute }

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.DRAM += o.DRAM
	b.GLB += o.GLB
	b.Compute += o.Compute
}

// Layer estimates one scheduled layer: DRAM energy from the estimated
// off-chip bytes; GLB energy from the fill/drain traffic plus the PE
// operand reads (one GLB read feeds IfmapSpatialReuse / FilterSpatialReuse
// MACs through the array's pass-through network, plus the ofmap
// write-back); compute energy from the MAC count. The same accounting is
// applied to every scheme, so comparisons stay fair.
func Layer(l *layer.Layer, est *policy.Result, cfg policy.Config, m Model) Breakdown {
	macs := float64(l.MACs())
	operandReads := macs/m.IfmapSpatialReuse + macs/m.FilterSpatialReuse + float64(l.OfmapElems())
	operandBytes := operandReads * float64(cfg.DataWidthBits) / 8
	glbBytes := float64(cfg.Bytes(est.AccessElems)) + operandBytes
	return Breakdown{
		DRAM:    float64(cfg.Bytes(est.AccessElems)) * m.DRAMPerByte,
		GLB:     glbBytes * m.GLBPerByte,
		Compute: macs * m.PerMAC,
	}
}

// Plan estimates a whole execution plan.
func Plan(p *core.Plan, m Model) (Breakdown, error) {
	if err := m.Validate(); err != nil {
		return Breakdown{}, err
	}
	var total Breakdown
	for i := range p.Layers {
		total.Add(Layer(&p.Layers[i].Layer, &p.Layers[i].Est, p.Cfg, m))
	}
	return total, nil
}

// DRAMOnly estimates the energy of raw off-chip traffic in bytes — used to
// compare against the baseline simulator, which reports traffic and cycles
// but no schedule.
func DRAMOnly(bytes int64, macs int64, cfg policy.Config, m Model) Breakdown {
	operandReads := float64(macs)/m.IfmapSpatialReuse + float64(macs)/m.FilterSpatialReuse
	operandBytes := operandReads * float64(cfg.DataWidthBits) / 8
	return Breakdown{
		DRAM:    float64(bytes) * m.DRAMPerByte,
		GLB:     float64(bytes)*m.GLBPerByte + operandBytes*m.GLBPerByte,
		Compute: float64(macs) * m.PerMAC,
	}
}
