package energy

import (
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
)

func TestDefaultModelGap(t *testing.T) {
	m := Default()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper's motivating 10-100x gap between off-chip and local costs.
	if ratio := m.DRAMPerByte / m.GLBPerByte; ratio < 10 || ratio > 1000 {
		t.Errorf("DRAM/GLB energy ratio = %.0f, want within the 10-100x regime", ratio)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{DRAMPerByte: 0, GLBPerByte: 1, PerMAC: 1},
		{DRAMPerByte: 1, GLBPerByte: -1, PerMAC: 1},
		{DRAMPerByte: 1, GLBPerByte: 1, PerMAC: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

// TestPlanEnergyTracksAccesses: with compute fixed, the plan with fewer
// off-chip accesses costs less energy — the paper's motivation made
// quantitative.
func TestPlanEnergyTracksAccesses(t *testing.T) {
	n, err := model.Builtin("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	small, err := core.NewPlanner(64, core.MinAccesses).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	// A homogeneous intra plan at 64 kB falls back to tiling everywhere and
	// moves far more data.
	worse, err := core.NewPlanner(64, core.MinAccesses).Homogeneous(n, policy.IntraLayer, false)
	if err != nil {
		t.Fatal(err)
	}
	m := Default()
	eGood, err := Plan(small, m)
	if err != nil {
		t.Fatal(err)
	}
	eBad, err := Plan(worse, m)
	if err != nil {
		t.Fatal(err)
	}
	if eGood.Total() >= eBad.Total() {
		t.Errorf("fewer accesses did not reduce energy: %.0f >= %.0f", eGood.Total(), eBad.Total())
	}
	if eGood.Compute != eBad.Compute {
		t.Errorf("compute energy differs between schemes: %.0f != %.0f", eGood.Compute, eBad.Compute)
	}
	// DRAM energy dominates for the wasteful plan.
	if eBad.DRAM < eBad.Compute {
		t.Errorf("wasteful plan's DRAM energy %.0f below compute %.0f", eBad.DRAM, eBad.Compute)
	}
}

func TestBreakdownArithmetic(t *testing.T) {
	var b Breakdown
	b.Add(Breakdown{DRAM: 1, GLB: 2, Compute: 3})
	b.Add(Breakdown{DRAM: 10, GLB: 20, Compute: 30})
	if b.Total() != 66 {
		t.Errorf("Total = %v, want 66", b.Total())
	}
}

func TestPlanRejectsBadModel(t *testing.T) {
	n, _ := model.Builtin("TinyCNN")
	p, err := core.NewPlanner(64, core.MinAccesses).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Plan(p, Model{}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestDRAMOnlyConsistency(t *testing.T) {
	cfg := policy.Default(64)
	m := Default()
	b := DRAMOnly(1000, 500, cfg, m)
	if b.DRAM != 1000*m.DRAMPerByte {
		t.Errorf("DRAM energy = %v", b.DRAM)
	}
	if b.Compute != 500*m.PerMAC {
		t.Errorf("compute energy = %v", b.Compute)
	}
	if b.GLB <= 0 {
		t.Errorf("GLB energy = %v", b.GLB)
	}
}

// TestSpatialReuseLowersGLBEnergy: a wider array (more pass-through reuse)
// reads the GLB less per MAC.
func TestSpatialReuseLowersGLBEnergy(t *testing.T) {
	n, _ := model.Builtin("TinyCNN")
	p, err := core.NewPlanner(64, core.MinAccesses).Heterogeneous(n)
	if err != nil {
		t.Fatal(err)
	}
	small := Default()
	small.IfmapSpatialReuse, small.FilterSpatialReuse = 4, 4
	big := Default()
	big.IfmapSpatialReuse, big.FilterSpatialReuse = 32, 32
	eSmall, err := Plan(p, small)
	if err != nil {
		t.Fatal(err)
	}
	eBig, err := Plan(p, big)
	if err != nil {
		t.Fatal(err)
	}
	if eBig.GLB >= eSmall.GLB {
		t.Errorf("32x reuse GLB energy %.0f not below 4x reuse %.0f", eBig.GLB, eSmall.GLB)
	}
	if eBig.DRAM != eSmall.DRAM || eBig.Compute != eSmall.Compute {
		t.Error("spatial reuse changed DRAM or compute energy")
	}
	bad := Default()
	bad.IfmapSpatialReuse = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("sub-1 reuse factor accepted")
	}
}
