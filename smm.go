// Package scratchmem is a Go reproduction of "Scratchpad Memory Management
// for Deep Learning Accelerators" (Zouzoula, Maleki, Azhar, Trancoso —
// ICPP 2024): a software memory-management technique for DL accelerators
// with a unified on-chip scratchpad (global buffer) that selects, per layer,
// among six reuse policies (intra-layer reuse and policies 1-5, each with an
// optional prefetching variant) to minimise either off-chip traffic or
// latency under the buffer-size constraint.
//
// The package is a thin façade over the implementation packages:
//
//   - internal/core     — the analyser (paper Algorithm 1), Hom/Het plans,
//     inter-layer reuse
//   - internal/policy   — the per-policy memory/access/latency estimators
//   - internal/model    — the six Table-2 networks + JSON / SCALE-Sim
//     topology formats
//   - internal/engine   — a functional executor validating plans down to
//     int32 arithmetic
//   - internal/scalesim — the SCALE-Sim-style separate-buffer baseline
//
// Quick start:
//
//	net, _ := scratchmem.BuiltinModel("ResNet18")
//	plan, _ := scratchmem.PlanModel(net, scratchmem.PlanOptions{
//		GLBKiloBytes: 64,
//		Objective:    scratchmem.MinAccesses,
//	})
//	fmt.Println(plan.AccessBytes(), plan.PolicyMix())
package scratchmem

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"scratchmem/internal/core"
	"scratchmem/internal/dse"
	"scratchmem/internal/model"
	"scratchmem/internal/obs"
	"scratchmem/internal/policy"
	"scratchmem/internal/program"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/simulate"
	"scratchmem/internal/smmerr"
)

// Re-exported core types. External users name them through these aliases.
type (
	// Network is an ordered list of layers executed one by one.
	Network = model.Network
	// Plan is a per-layer execution plan (a "management scheme").
	Plan = core.Plan
	// Config is the accelerator specification fed to the estimators.
	Config = policy.Config
	// Objective selects the optimisation target.
	Objective = core.Objective
	// PolicyID identifies one of the paper's memory-management policies.
	PolicyID = policy.ID
	// BaselineConfig describes a separate-buffer SCALE-Sim-style baseline.
	BaselineConfig = scalesim.Config
	// BaselineResult aggregates a baseline simulation of a network.
	BaselineResult = scalesim.NetworkResult
)

// Objectives.
const (
	// MinAccesses minimises off-chip traffic (paper Algorithm 1).
	MinAccesses = core.MinAccesses
	// MinLatency minimises estimated latency.
	MinLatency = core.MinLatency
)

// Policy identifiers, in paper order.
const (
	IntraLayerReuse     = policy.IntraLayer
	Policy1IfmapReuse   = policy.P1IfmapReuse
	Policy2FilterReuse  = policy.P2FilterReuse
	Policy3PerChannel   = policy.P3PerChannel
	Policy4PartialIfmap = policy.P4PartialIfmap
	Policy5PartialPerCh = policy.P5PartialPerChannel
)

// DefaultConfig returns the paper's accelerator setup (16x16 PEs, 8-bit
// data, 16 B/cycle DRAM bandwidth, padding counted) for a GLB of the given
// size in kB.
func DefaultConfig(glbKB int) Config { return policy.Default(glbKB) }

// BuiltinModel returns one of the built-in networks by name
// (case-insensitive): the six Table-2 models plus "TinyCNN".
func BuiltinModel(name string) (*Network, error) { return model.Builtin(name) }

// BuiltinModels returns the six networks of the paper's Table 2.
func BuiltinModels() []*Network { return model.Builtins() }

// LoadModel reads a network description from disk. Files ending in .csv are
// parsed as SCALE-Sim topology files; everything else as the JSON format.
func LoadModel(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		base := path[strings.LastIndexByte(path, '/')+1:]
		return model.ReadTopologyCSV(strings.TrimSuffix(base, ".csv"), f)
	}
	return model.ReadJSON(f)
}

// SaveModel writes a network description; .csv selects the SCALE-Sim
// topology format, anything else JSON.
func SaveModel(n *Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".csv") {
		return n.WriteTopologyCSV(f)
	}
	return n.WriteJSON(f)
}

// PlanOptions parameterise PlanModel.
type PlanOptions struct {
	// GLBKiloBytes is the unified scratchpad size (required unless Config
	// is set).
	GLBKiloBytes int
	// Config overrides the whole accelerator specification; when non-zero
	// it takes precedence over GLBKiloBytes.
	Config Config
	// Objective selects MinAccesses (default) or MinLatency.
	Objective Objective
	// Homogeneous applies the single best policy to every layer (the
	// paper's Hom scheme) instead of a per-layer choice (Het).
	Homogeneous bool
	// DisablePrefetch removes the "+p" policy variants.
	DisablePrefetch bool
	// InterLayerReuse lets a layer's ofmap stay resident to feed the next
	// layer (§5.4).
	InterLayerReuse bool
	// Strict disables the degradation ladder: an infeasible request returns
	// ErrInfeasible exactly as it did before degraded plans existed, instead
	// of falling back to a more conservative rung.
	Strict bool
}

func (o PlanOptions) config() (Config, error) {
	cfg := o.Config
	if cfg == (Config{}) {
		if o.GLBKiloBytes <= 0 {
			return Config{}, smmerr.BadModelf("scratchmem: PlanOptions needs GLBKiloBytes or Config")
		}
		cfg = policy.Default(o.GLBKiloBytes)
	}
	return cfg, smmerr.BadModel(cfg.Validate())
}

// PlanKey returns the canonical SHA-256 content hash of a planning request:
// the hex digest of the network's deterministic JSON form plus the resolved
// accelerator configuration and every plan option that affects the result.
// Planning is a pure function of these inputs, so the key addresses a plan
// cache (internal/plancache, served by smm-serve): equal keys ⇒ equal
// plans. Requests expressed via GLBKiloBytes and via the equivalent
// explicit Config hash identically because the key is built from the
// resolved Config.
func PlanKey(n *Network, o PlanOptions) (string, error) {
	cfg, err := o.config()
	if err != nil {
		return "", err
	}
	canon, err := model.CanonicalJSON(n)
	if err != nil {
		return "", err
	}
	if cfg.Batch == 1 {
		cfg.Batch = 0 // same single inference as 0 (Config.BatchSize)
	}
	// Fixed-field struct, so json.Marshal emits a deterministic byte
	// sequence for the non-network half of the request.
	opts, err := json.Marshal(struct {
		Cfg             Config
		Objective       string
		Homogeneous     bool
		DisablePrefetch bool
		InterLayerReuse bool
		Strict          bool
	}{cfg, o.Objective.String(), o.Homogeneous, o.DisablePrefetch, o.InterLayerReuse, o.Strict})
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(canon)
	h.Write([]byte{0}) // domain separator between network and options
	h.Write(opts)
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// PlanModel runs the paper's memory-management technique on a network and
// returns the execution plan.
func PlanModel(n *Network, o PlanOptions) (*Plan, error) {
	return PlanModelCtx(context.Background(), n, o, nil)
}

// PlanModelCtx is PlanModel with cancellation and observation: the planner
// checks ctx between layers (Algorithm 1's outer loop), so a canceled
// context returns an error wrapping context.Canceled within one layer's
// work, and prog — when non-nil — receives one "plan" event per planned
// layer with the running traffic and latency totals. Failures carry the
// package's typed taxonomy: ErrBadModel for invalid inputs, ErrInfeasible
// (as *InfeasibleError, inside a *LayerError) when a layer does not fit.
//
// When the requested policy set is infeasible and o.Strict is false, the
// planner walks a degradation ladder instead of failing: re-plan with
// prefetching relaxed, then with only the smallest-footprint schedules
// (P4/P5 at a single-filter block plus fallback tiling), then the baseline
// statically-split double-buffered fallback plan, which always succeeds.
// A ladder plan is marked Degraded with the mode that produced it and the
// machine-readable chain of rungs that failed before it. Cancellation,
// invalid models and injected faults abort the ladder immediately; only
// genuine infeasibility descends a rung.
func PlanModelCtx(ctx context.Context, n *Network, o PlanOptions, prog Progress) (*Plan, error) {
	cfg, err := o.config()
	if err != nil {
		return nil, err
	}
	// A caller-supplied observer wants one event per planned layer, which a
	// spliced run cannot deliver — detach any differ so such requests take
	// the full walk. The tracing span's own progress wrapper (attached
	// below) is telemetry, not a caller contract, and does not disable
	// differential planning.
	if prog != nil {
		ctx = core.WithDiffer(ctx, nil)
	}
	ctx, span := obs.StartSpan(ctx, "plan")
	if span != nil {
		span.SetAttr("model", n.Name)
		span.SetAttr("layers", len(n.Layers))
		span.SetAttr("objective", o.Objective.String())
		prog = obs.SpanProgress(span, prog)
		defer span.End()
	}
	plan, err := planLadder(ctx, cfg, n, o, prog)
	if span != nil {
		if err != nil {
			span.SetAttr("error", err.Error())
		} else if plan.Degraded {
			span.SetAttr("degraded_mode", plan.DegradedMode)
		}
	}
	return plan, err
}

// planLadder is PlanModelCtx after option resolution and instrumentation:
// the requested plan plus the degradation ladder.
func planLadder(ctx context.Context, cfg Config, n *Network, o PlanOptions, prog Progress) (*Plan, error) {
	pl := &core.Planner{
		Cfg:             cfg,
		Objective:       o.Objective,
		DisablePrefetch: o.DisablePrefetch,
		InterLayer:      o.InterLayerReuse,
	}
	// One estimate table per planning run — or the caller's long-lived one
	// (the server scopes a capped table to its lifetime via policy.WithMemo
	// so /metrics can report serving-path hit rates). The ladder's rungs
	// are Planner copies, so they share the table and re-plan from cached
	// estimates.
	memo := policy.MemoFrom(ctx)
	if memo == nil {
		memo = policy.NewMemo()
	}
	pl.UseMemo(memo)
	plan, err := planRequested(ctx, pl, n, o.Homogeneous, prog)
	if err == nil {
		return plan, nil
	}
	if o.Strict || !errors.Is(err, smmerr.ErrInfeasible) {
		return nil, err
	}
	// The degradation rungs re-plan under relaxed knobs: detach any differ
	// so their plans are neither spliced from foreign checkpoints nor
	// captured/counted as the requested rung's.
	ctx = core.WithDiffer(ctx, nil)
	reasons := []core.DegradedReason{{Mode: "requested", Err: err.Error()}}

	// Rung 1: relax prefetching. Prefetch double-buffers every tile (paper
	// Eq. 2), so the "+p"-free policy set needs half the buffer space.
	if !o.DisablePrefetch {
		relaxed := *pl
		relaxed.DisablePrefetch = true
		plan, err = planRequested(ctx, &relaxed, n, o.Homogeneous, prog)
		if err == nil {
			plan.MarkDegraded(core.DegradedPrefetchRelaxed, reasons)
			return plan, nil
		}
		if !errors.Is(err, smmerr.ErrInfeasible) {
			return nil, err
		}
		reasons = append(reasons, core.DegradedReason{Mode: core.DegradedPrefetchRelaxed, Err: err.Error()})
	}

	// Rung 2: shrink P4/P5 to their single-filter blocks and allow only the
	// minimal-footprint schedules, planned over the network's
	// tensor-lifetime graph so allocator-backed residency claws back some
	// of the traffic the smaller candidate set gives up (it degrades to the
	// old flat minimal-tiling sweep when nothing fits on-chip).
	plan, err = pl.LifetimeSpillCtx(ctx, n, prog)
	if err == nil {
		plan.MarkDegraded(core.DegradedLifetimeSpill, reasons)
		return plan, nil
	}
	if !errors.Is(err, smmerr.ErrInfeasible) {
		return nil, err
	}
	reasons = append(reasons, core.DegradedReason{Mode: core.DegradedLifetimeSpill, Err: err.Error()})

	// Rung 3: the baseline statically-split double-buffered plan. It never
	// reports infeasibility, so the ladder always terminates with a plan.
	plan, err = pl.BaselineFallbackCtx(ctx, n, prog)
	if err != nil {
		return nil, err
	}
	plan.MarkDegraded(core.DegradedBaseline, reasons)
	return plan, nil
}

// planRequested runs the planner exactly as the options ask (ladder rung 0).
func planRequested(ctx context.Context, pl *core.Planner, n *Network, homogeneous bool, prog Progress) (*Plan, error) {
	if homogeneous {
		return pl.BestHomogeneousCtx(ctx, n, prog)
	}
	// Differential planning: when a differ is installed (the server does,
	// per request), look up the best-overlapping checkpoint and resume from
	// it. Homogeneous plans pick one global variant (nothing per-layer to
	// splice), and caller-observed runs had their differ detached in
	// PlanModelCtx, so both take the plain path.
	if d := core.DifferFrom(ctx); d != nil {
		var ck *core.Checkpoint
		if d.Lookup != nil {
			ck = d.Lookup(policy.ChainOf(n.Layers))
		}
		plan, nck, stats, err := pl.HeterogeneousDiffCtx(ctx, n, ck)
		if err != nil {
			return nil, err
		}
		d.Checkpoint, d.Outcome, d.LayersReused = nck, stats.Outcome, stats.LayersReused
		return plan, nil
	}
	return pl.HeterogeneousCtx(ctx, n, prog)
}

// BaselineSplits returns the paper's three fixed-partition baseline
// configurations (25-75, 50-50, 75-25) for a GLB of the given size.
func BaselineSplits(glbKB, widthBits int) []BaselineConfig {
	return scalesim.PaperSplits(glbKB, widthBits)
}

// SimulateBaseline runs the SCALE-Sim-style baseline over a network.
func SimulateBaseline(n *Network, cfg BaselineConfig) (*BaselineResult, error) {
	return scalesim.SimulateNetwork(n, cfg)
}

// SimulateBaselineCtx is SimulateBaseline with per-layer cancellation
// checks and "baseline" progress events.
func SimulateBaselineCtx(ctx context.Context, n *Network, cfg BaselineConfig, prog Progress) (*BaselineResult, error) {
	return scalesim.SimulateNetworkCtx(ctx, n, cfg, prog)
}

// CompileProgram lowers a plan into a serialisable command stream by
// dry-running every layer's tile schedule (see internal/program).
func CompileProgram(p *Plan) (*program.Program, error) { return program.Compile(p) }

// CompileProgramCtx is CompileProgram with per-layer cancellation checks
// and "compile" progress events.
func CompileProgramCtx(ctx context.Context, p *Plan, prog Progress) (*program.Program, error) {
	return program.CompileCtx(ctx, p, prog)
}

// Program is the command-stream artefact a compiler backend would consume.
type Program = program.Program

// SimulatePlan times a plan end-to-end on the ideal fixed-bandwidth
// backend, returning (measured cycles, planner-estimated cycles).
func SimulatePlan(p *Plan) (measured, estimated int64, err error) {
	return SimulatePlanCtx(context.Background(), p, nil)
}

// SimulatePlanCtx is SimulatePlan with cancellation (checked per layer and
// inside each layer's schedule walk) and "simulate" progress events.
func SimulatePlanCtx(ctx context.Context, p *Plan, prog Progress) (measured, estimated int64, err error) {
	ctx, span := obs.StartSpan(ctx, "simulate")
	if span != nil {
		span.SetAttr("model", p.Model)
		span.SetAttr("layers", len(p.Layers))
		prog = obs.SpanProgress(span, prog)
		defer span.End()
	}
	r, err := simulate.RunCtx(ctx, p, simulate.Options{}, prog)
	if err != nil {
		span.SetAttr("error", err.Error())
		return 0, 0, err
	}
	span.SetAttr("cycles", r.Cycles)
	return r.Cycles, r.EstimateCycles, nil
}

// DSEAccessElems runs the exhaustive tile-size search over a network and
// returns its optimum off-chip traffic — the reference the policy plans are
// measured against (internal/dse).
func DSEAccessElems(n *Network, cfg Config) (elems int64, feasible bool) {
	return dse.NetworkAccessElems(n, cfg)
}

// DSEAccessElemsCtx is DSEAccessElems with cancellation — checked per layer
// and per candidate filter-block size inside the grid search, so even a
// single large layer's sweep aborts promptly — and "dse" progress events.
func DSEAccessElemsCtx(ctx context.Context, n *Network, cfg Config, prog Progress) (elems int64, feasible bool, err error) {
	ctx, span := obs.StartSpan(ctx, "dse")
	if span != nil {
		span.SetAttr("model", n.Name)
		span.SetAttr("layers", len(n.Layers))
		prog = obs.SpanProgress(span, prog)
		defer span.End()
	}
	elems, feasible, err = dse.NetworkAccessElemsCtx(ctx, n, cfg, prog)
	span.SetAttr("feasible", feasible)
	return elems, feasible, err
}
