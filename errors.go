package scratchmem

import (
	"scratchmem/internal/progress"
	"scratchmem/internal/smmerr"
)

// Typed error taxonomy, re-exported from internal/smmerr. Every error a
// long-running entry point returns classifies into one of three families:
//
//   - ErrBadModel — the request is wrong (invalid network or accelerator
//     configuration); match with errors.Is(err, ErrBadModel).
//   - ErrInfeasible — no policy fits the scratchpad even with fallback
//     tiling; errors.As(err, *InfeasibleError) recovers the layer, the
//     bytes needed and the bytes available.
//   - context errors — cancellation and deadlines pass through wrapped, so
//     errors.Is(err, context.Canceled) holds end to end.
//
// LayerError localises any of the above to the layer where the pipeline
// stopped.
var (
	// ErrInfeasible marks plans that cannot be scheduled within the GLB.
	ErrInfeasible = smmerr.ErrInfeasible
	// ErrBadModel marks invalid networks or accelerator configurations.
	ErrBadModel = smmerr.ErrBadModel
)

type (
	// InfeasibleError reports the layer that does not fit the scratchpad.
	InfeasibleError = smmerr.InfeasibleError
	// LayerError wraps a pipeline failure with the layer index and name
	// where it occurred; errors.Is/As see through it to the cause.
	LayerError = smmerr.LayerError
)

// IsCanceled reports whether err stems from context cancellation or an
// expired deadline anywhere in the pipeline.
func IsCanceled(err error) bool { return smmerr.IsCanceled(err) }

// Progress receives per-unit events from the *Ctx entry points: one event
// per planned layer, simulated layer, DSE layer or compiled layer. A nil
// Progress disables observation at zero cost. Implementations used with
// concurrent drivers must be safe for concurrent use.
type Progress = progress.Func

// ProgressEvent is one progress notification: the pipeline phase ("plan",
// "simulate", "dse", "baseline", "compile"), the unit's index/total and
// name, and running totals where the phase tracks them.
type ProgressEvent = progress.Event
