package scratchmem

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"scratchmem/internal/core"
)

// TestDegradationLadder pins the graceful-degradation contract at the API
// root: a GLB too small for every policy no longer returns ErrInfeasible
// but the baseline fallback plan, marked degraded, with the machine-
// readable chain of rungs that failed on the way down.
func TestDegradationLadder(t *testing.T) {
	net, err := BuiltinModel("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanModel(net, PlanOptions{GLBKiloBytes: 1})
	if err != nil {
		t.Fatalf("ladder must terminate with a plan, got %v", err)
	}
	if !plan.Degraded || plan.DegradedMode != core.DegradedBaseline {
		t.Fatalf("degraded=%v mode=%q, want true/%q", plan.Degraded, plan.DegradedMode, core.DegradedBaseline)
	}
	wantChain := []string{"requested", core.DegradedPrefetchRelaxed, core.DegradedLifetimeSpill}
	if len(plan.DegradedReasons) != len(wantChain) {
		t.Fatalf("reason chain %+v, want modes %v", plan.DegradedReasons, wantChain)
	}
	for i, want := range wantChain {
		if r := plan.DegradedReasons[i]; r.Mode != want || r.Err == "" {
			t.Errorf("reason %d = %+v, want mode %q with a message", i, r, want)
		}
	}
	// A truly-degraded plan exceeds the GLB: the fallback keeps the
	// over-capacity estimate so the caller can read the exact shortfall.
	if plan.Feasible() {
		t.Error("1 kB GLB plan reports feasible")
	}
	if need := plan.MaxMemoryBytes(); need <= plan.Cfg.GLBBytes {
		t.Errorf("MaxMemoryBytes %d does not show the shortfall over GLB %d", need, plan.Cfg.GLBBytes)
	}
	doc := PlanDocument(plan)
	if !doc.Degraded || doc.DegradedMode != core.DegradedBaseline || len(doc.DegradedReasons) != len(wantChain) {
		t.Errorf("PlanDocument lost the degradation record: %+v", doc)
	}
	for i, r := range doc.DegradedReasons {
		if r.Mode != wantChain[i] || r.Error == "" {
			t.Errorf("doc reason %d = %+v, want mode %q with a message", i, r, wantChain[i])
		}
	}
}

// TestStrictRestoresInfeasible: the strict opt-out skips the ladder and
// returns the pre-existing typed taxonomy untouched.
func TestStrictRestoresInfeasible(t *testing.T) {
	net, err := BuiltinModel("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	_, err = PlanModel(net, PlanOptions{GLBKiloBytes: 1, Strict: true})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("strict err = %v, want ErrInfeasible", err)
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) || ie.Need <= ie.Have {
		t.Errorf("strict error lost the need/have detail: %v", err)
	}
}

// TestFeasiblePlanNotDegraded: a plan that succeeds at rung 0 carries no
// degradation record, and its document omits the fields entirely.
func TestFeasiblePlanNotDegraded(t *testing.T) {
	net, err := BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanModel(net, PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Degraded || plan.DegradedMode != "" || plan.DegradedReasons != nil {
		t.Errorf("feasible plan marked degraded: %+v", plan)
	}
	raw, err := json.Marshal(PlanDocument(plan))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "degraded") {
		t.Errorf("feasible PlanDoc leaks degraded fields: %s", raw)
	}
}

// TestPlanKeyStrictDiffers: strict is part of the cache identity, so a
// cached degraded plan can never be served to a strict request.
func TestPlanKeyStrictDiffers(t *testing.T) {
	net, err := BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	lax, err := PlanKey(net, PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := PlanKey(net, PlanOptions{GLBKiloBytes: 32, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	if lax == strict {
		t.Error("PlanKey ignores Strict; a degraded plan could answer a strict request")
	}
}

// TestBaselineFallbackPlanSimulates: when the baseline fallback fits (the
// degradation target on a reasonable GLB), the emitted plan is a complete,
// executable schedule — it compiles and simulates like any rung-0 plan.
func TestBaselineFallbackPlanSimulates(t *testing.T) {
	net, err := BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	pl := &core.Planner{Cfg: DefaultConfig(64)}
	plan, err := pl.BaselineFallbackCtx(context.Background(), net, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("baseline fallback infeasible at 64 kB for TinyCNN (needs %d B)", plan.MaxMemoryBytes())
	}
	measured, estimated, err := SimulatePlan(plan)
	if err != nil {
		t.Fatalf("degraded-mode plan failed to simulate: %v", err)
	}
	if measured <= 0 || estimated <= 0 {
		t.Errorf("simulation returned (%d, %d), want positive cycle counts", measured, estimated)
	}
}

// TestLadderAbortsOnCancel: cancellation is not infeasibility — the ladder
// must not descend a rung on it, let alone return a degraded plan.
func TestLadderAbortsOnCancel(t *testing.T) {
	net, err := BuiltinModel("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan, err := PlanModelCtx(ctx, net, PlanOptions{GLBKiloBytes: 1}, nil)
	if plan != nil || !IsCanceled(err) {
		t.Errorf("canceled ladder = (%v, %v), want (nil, canceled)", plan, err)
	}
}
