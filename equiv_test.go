package scratchmem

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
)

// equivSizesKB mirrors the paper's sweep (experiments.PaperSizesKB).
var equivSizesKB = []int{64, 128, 256, 512, 1024}

// planScheme names one planning entry point for the equivalence matrix.
type planScheme struct {
	name string
	run  func(context.Context, *core.Planner, *Network) (*Plan, error)
}

var planSchemes = []planScheme{
	{"het", func(ctx context.Context, pl *core.Planner, n *Network) (*Plan, error) {
		return pl.HeterogeneousCtx(ctx, n, nil)
	}},
	{"hom", func(ctx context.Context, pl *core.Planner, n *Network) (*Plan, error) {
		return pl.BestHomogeneousCtx(ctx, n, nil)
	}},
	{"inter", func(ctx context.Context, pl *core.Planner, n *Network) (*Plan, error) {
		il := *pl
		il.InterLayer = true
		return il.HeterogeneousCtx(ctx, n, nil)
	}},
}

// TestMemoizedPlanningEquivalence is the PR's golden equivalence property:
// across every builtin model, every paper GLB size, both objectives and
// every planning scheme, the memoized, parallel-sweep planner produces a
// plan that is deeply equal — and renders to byte-identical canonical
// PlanDoc JSON — to the sequential, memo-free reference. Run it under
// -race to also exercise the fan-out's synchronisation.
func TestMemoizedPlanningEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, name := range model.BuiltinNames() {
		n, err := model.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, kb := range equivSizesKB {
			for _, obj := range []Objective{MinAccesses, MinLatency} {
				for _, sc := range planSchemes {
					// Reference: no memo, no winner cache, sequential sweeps.
					ref := &core.Planner{Cfg: policy.Default(kb), Objective: obj, Workers: 1}
					ref.UseMemo(nil)
					want, wantErr := sc.run(ctx, ref, n)

					// Optimized: fresh memo + companion caches, parallel sweeps.
					opt := core.NewPlanner(kb, obj)
					opt.Workers = 8
					got, gotErr := sc.run(ctx, opt, n)

					tag := name + "/" + sc.name
					if (wantErr == nil) != (gotErr == nil) {
						t.Fatalf("%s@%dkB %v: errors diverge: ref=%v opt=%v", tag, kb, obj, wantErr, gotErr)
					}
					if wantErr != nil {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s@%dkB %v: plans diverge", tag, kb, obj)
					}
					wantJSON, err := PlanDocument(want).MarshalIndent()
					if err != nil {
						t.Fatal(err)
					}
					gotJSON, err := PlanDocument(got).MarshalIndent()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotJSON, wantJSON) {
						t.Fatalf("%s@%dkB %v: canonical plan documents diverge", tag, kb, obj)
					}

					// A second planner sharing the first's warm caches (the
					// figure drivers' pattern) answers identically too.
					shared := core.NewPlanner(kb, obj)
					shared.UseMemo(opt.Memo)
					shared.Workers = 8
					again, err := sc.run(ctx, shared, n)
					if err != nil {
						t.Fatalf("%s@%dkB %v: warm-cache replan failed: %v", tag, kb, obj, err)
					}
					if !reflect.DeepEqual(again, want) {
						t.Fatalf("%s@%dkB %v: warm-cache plan diverges", tag, kb, obj)
					}
				}
			}
		}
	}
}
