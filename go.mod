module scratchmem

go 1.22
