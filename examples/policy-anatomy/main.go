// Policy-anatomy: execute one convolution layer under every memory-
// management policy on the functional engine, verify that all of them
// produce bit-identical results, and show how each policy trades scratchpad
// footprint against off-chip traffic and latency — the intuition behind the
// paper's §3.2.
//
// Run with: go run ./examples/policy-anatomy
package main

import (
	"fmt"
	"log"
	"math/rand"

	"scratchmem/internal/engine"
	"scratchmem/internal/layer"
	"scratchmem/internal/policy"
	"scratchmem/internal/tensor"
)

func main() {
	// A mid-network convolution: 28x28x32 ifmap, 3x3 filters, 64 outputs.
	l := layer.MustNew("conv", layer.Conv, 28, 28, 32, 3, 3, 64, 1, 1)
	cfg := policy.Default(64) // 64 kB unified scratchpad

	r := rand.New(rand.NewSource(2024))
	in := tensor.New(l.IH, l.IW, l.CI).Random(r)
	w := tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)
	want := tensor.Conv2D(in, w, l.S, l.P)

	fmt.Printf("layer %s under a %d kB GLB\n", l.String(), cfg.GLBBytes/1024)
	fmt.Printf("%-22s %6s %9s %10s %10s %9s %8s\n",
		"policy", "fits", "mem kB", "accesses", "ifmap x", "latency", "output")
	for _, id := range policy.IDs() {
		for _, pf := range []bool{false, true} {
			est := policy.Estimate(&l, id, policy.Options{Prefetch: pf}, cfg)
			name := policy.Variant(id, pf)
			if !est.Feasible {
				fmt.Printf("%-22s %6s %9.1f %10s %10s %9s %8s\n",
					name, "no", float64(est.MemoryBytes)/1024, "-", "-", "-", "-")
				continue
			}
			res, err := engine.Run(&l, &est, cfg, in, w)
			if err != nil {
				log.Fatal(err)
			}
			verdict := "OK"
			if !res.Output.Equal(want) {
				verdict = "WRONG"
			}
			if res.AccessElems() != est.AccessElems {
				verdict = "DRIFT"
			}
			fmt.Printf("%-22s %6s %9.1f %10d %10d %9d %8s\n",
				name, "yes", float64(est.MemoryBytes)/1024,
				est.AccessElems, est.IfmapLoads, est.LatencyCycles, verdict)
		}
	}
	min := policy.MinAccessElems(&l, cfg)
	fmt.Printf("\ntheoretical minimum (every element once): %d elements\n", min)
	fmt.Println("policies 1-3 and intra-layer reach it when they fit; policies 4-5 trade")
	fmt.Println("extra ifmap passes for a footprint that fits the buffer; '+p' variants")
	fmt.Println("double every tile (paper Eq. 2) to overlap loads with compute.")
}
