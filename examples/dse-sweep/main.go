// DSE-sweep: a design-space exploration across all six paper models, the
// five paper buffer sizes and both objectives, fanned out over a worker
// pool. Prints, per model, how the heterogeneous scheme's traffic and
// latency move with the buffer size and where the best baseline lands —
// the data behind the paper's Figures 5 and 8 in one grid.
//
// Run with: go run ./examples/dse-sweep
package main

import (
	"fmt"
	"log"

	scratchmem "scratchmem"
	"scratchmem/internal/parallel"
)

type cell struct {
	model       string
	sizeKB      int
	hetAccessMB float64
	hetLatencyM float64
	baselineMB  float64
}

func main() {
	models := []string{"EfficientNetB0", "GoogLeNet", "MnasNet", "MobileNet", "MobileNetV2", "ResNet18"}
	sizes := []int{64, 128, 256, 512, 1024}

	cells := parallel.Map(len(models)*len(sizes), 0, func(i int) cell {
		m, kb := models[i/len(sizes)], sizes[i%len(sizes)]
		net, err := scratchmem.BuiltinModel(m)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{GLBKiloBytes: kb})
		if err != nil {
			log.Fatal(err)
		}
		lat, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{GLBKiloBytes: kb, Objective: scratchmem.MinLatency})
		if err != nil {
			log.Fatal(err)
		}
		best := int64(0)
		for _, bc := range scratchmem.BaselineSplits(kb, 8) {
			r, err := scratchmem.SimulateBaseline(net, bc)
			if err != nil {
				log.Fatal(err)
			}
			if b := r.DRAMBytes(); best == 0 || b < best {
				best = b
			}
		}
		return cell{
			model:       m,
			sizeKB:      kb,
			hetAccessMB: float64(acc.AccessBytes()) / (1 << 20),
			hetLatencyM: float64(lat.LatencyCycles()) / 1e6,
			baselineMB:  float64(best) / (1 << 20),
		}
	})

	fmt.Printf("%-15s %6s  %12s %12s %12s %10s\n",
		"model", "GLB", "baseline MB", "Het MB", "reduction", "Het_l Mcyc")
	for _, c := range cells {
		fmt.Printf("%-15s %4dkB  %12.2f %12.2f %11.0f%% %10.2f\n",
			c.model, c.sizeKB, c.baselineMB, c.hetAccessMB,
			100*(1-c.hetAccessMB/c.baselineMB), c.hetLatencyM)
	}
}
