// Quickstart: plan ResNet18 on a 64 kB unified scratchpad and compare the
// resulting off-chip traffic against the paper's fixed-partition baselines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	scratchmem "scratchmem"
)

func main() {
	net, err := scratchmem.BuiltinModel("ResNet18")
	if err != nil {
		log.Fatal(err)
	}

	// The paper's accelerator: 16x16 PEs, 8-bit data, 16 B/cycle DRAM
	// bandwidth, and here a 64 kB global buffer.
	plan, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{
		GLBKiloBytes: 64,
		Objective:    scratchmem.MinAccesses,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on a 64 kB unified scratchpad\n", net.Name)
	fmt.Printf("  heterogeneous plan: %.2f MB off-chip traffic, %.2f Mcycles, policies %v\n",
		mb(plan.AccessBytes()), float64(plan.LatencyCycles())/1e6, plan.PolicyMix())

	// The same budget split into fixed separate buffers (the baseline).
	fmt.Println("  fixed-partition baselines:")
	best := int64(0)
	for _, cfg := range scratchmem.BaselineSplits(64, 8) {
		res, err := scratchmem.SimulateBaseline(net, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-9s %.2f MB\n", cfg.Name, mb(res.DRAMBytes()))
		if b := res.DRAMBytes(); best == 0 || b < best {
			best = b
		}
	}
	fmt.Printf("  reduction vs best baseline: %.0f%% (paper reports ~80%% here)\n",
		100*(1-float64(plan.AccessBytes())/float64(best)))
}

func mb(b int64) float64 { return float64(b) / (1024 * 1024) }
