// Custom-model: define a network in code, save it in both supported on-disk
// formats (JSON and SCALE-Sim topology CSV), load it back, and plan it for
// two objectives — the workflow a user with their own model goes through.
//
// Run with: go run ./examples/custom-model
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	scratchmem "scratchmem"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
)

func main() {
	// A small keyword-spotting style CNN on 64x64 spectrogram patches.
	net := &model.Network{
		Name: "KWSNet",
		Layers: []layer.Layer{
			layer.MustNew("stem", layer.Conv, 64, 64, 1, 5, 5, 16, 2, 2),
			layer.MustNew("dw1", layer.DepthwiseConv, 32, 32, 16, 3, 3, 1, 1, 1),
			layer.MustNew("pw1", layer.PointwiseConv, 32, 32, 16, 1, 1, 32, 1, 0),
			layer.MustNew("dw2", layer.DepthwiseConv, 32, 32, 32, 3, 3, 1, 2, 1),
			layer.MustNew("pw2", layer.PointwiseConv, 16, 16, 32, 1, 1, 64, 1, 0),
			layer.MustNew("conv3", layer.Conv, 16, 16, 64, 3, 3, 64, 1, 1),
			layer.FC("fc", 64, 12),
		},
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "smm-custom-model")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Round-trip through both formats.
	jsonPath := filepath.Join(dir, "kws.json")
	csvPath := filepath.Join(dir, "kws.csv")
	if err := scratchmem.SaveModel(net, jsonPath); err != nil {
		log.Fatal(err)
	}
	if err := scratchmem.SaveModel(net, csvPath); err != nil {
		log.Fatal(err)
	}
	loaded, err := scratchmem.LoadModel(jsonPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d layers, %.1fk parameters, %.1fM MACs (saved to %s and %s)\n",
		loaded.Name, len(loaded.Layers),
		float64(loaded.Params())/1e3, float64(loaded.MACs())/1e6,
		filepath.Base(jsonPath), filepath.Base(csvPath))

	// Plan the loaded model for both objectives on a tight 16 kB buffer.
	for _, obj := range []scratchmem.Objective{scratchmem.MinAccesses, scratchmem.MinLatency} {
		plan, err := scratchmem.PlanModel(loaded, scratchmem.PlanOptions{
			GLBKiloBytes: 16,
			Objective:    obj,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nobjective %s @16kB: %.1f kB traffic, %.1f kcycles\n",
			obj, float64(plan.AccessBytes())/1024, float64(plan.LatencyCycles())/1e3)
		for i := range plan.Layers {
			lp := &plan.Layers[i]
			label := lp.Est.Policy.Short()
			if lp.Est.Opts.Prefetch {
				label += "+p"
			}
			fmt.Printf("  %-6s -> %-8s mem %5.1f kB, %7d elems, %6d cycles\n",
				lp.Layer.Name, label,
				float64(lp.Est.MemoryBytes)/1024, lp.Est.AccessElems, lp.Est.LatencyCycles)
		}
	}
}
