// Compile-and-simulate: the full toolchain pass a compiler backend would
// take — plan a model, lower the plan to a command-stream program, verify
// the program against the plan, and time it end-to-end on the simulator,
// including a comparison against the exhaustive tiling DSE.
//
// Run with: go run ./examples/compile-and-simulate
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	scratchmem "scratchmem"
)

func main() {
	net, err := scratchmem.BuiltinModel("MobileNet")
	if err != nil {
		log.Fatal(err)
	}
	cfg := scratchmem.DefaultConfig(128)
	plan, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{Config: cfg, Objective: scratchmem.MinLatency})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planned %s @128kB for latency: %.2f MB traffic, %.2f Mcycles estimated\n",
		net.Name, float64(plan.AccessBytes())/(1<<20), float64(plan.LatencyCycles())/1e6)

	// Lower to a command stream and persist it.
	prog, err := scratchmem.CompileProgram(plan)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "smm-program")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mobilenet.program.json")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("compiled %d ops (%d layers) -> %s (%.1f kB)\n",
		prog.Ops(), len(prog.Layers), filepath.Base(path), float64(info.Size())/1024)
	if prog.AccessElems() != plan.AccessElems() {
		log.Fatalf("program/plan traffic mismatch: %d != %d", prog.AccessElems(), plan.AccessElems())
	}

	// Time the plan end-to-end and compare against the analytical estimate.
	measured, estimated, err := scratchmem.SimulatePlan(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %.2f Mcycles vs %.2f estimated (%.1f%% apart)\n",
		float64(measured)/1e6, float64(estimated)/1e6,
		100*(float64(measured)/float64(estimated)-1))

	// How close is the plan to the exhaustive tiling optimum?
	accPlan, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{Config: cfg})
	if err != nil {
		log.Fatal(err)
	}
	opt, ok := scratchmem.DSEAccessElems(net, cfg)
	if !ok {
		log.Fatal("DSE found no feasible tiling")
	}
	fmt.Printf("access-optimised plan: %d elems vs DSE optimum %d (gap %.2f%%)\n",
		accPlan.AccessElems(), opt,
		100*(float64(accPlan.AccessElems())/float64(opt)-1))
}
