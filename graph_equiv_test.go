package scratchmem

import (
	"bytes"
	"testing"
)

var equivModels = []string{
	"EfficientNetB0", "GoogLeNet", "MnasNet", "MobileNet", "MobileNetV2",
	"ResNet18", "TinyCNN", "AlexNet", "VGG16",
}

// TestGraphChainEquivalence pins the compatibility contract of the graph
// path: a chain graph — which every FromNetwork lift is — plans through the
// exact linear pipeline, so its canonical document is byte-identical to
// PlanModel's. Cache keys, stored documents and peer fills therefore never
// fork between the two entry points.
func TestGraphChainEquivalence(t *testing.T) {
	for _, name := range equivModels {
		for _, obj := range []Objective{MinAccesses, MinLatency} {
			net, err := BuiltinModel(name)
			if err != nil {
				t.Fatal(err)
			}
			opts := PlanOptions{GLBKiloBytes: 128, Objective: obj}
			want, err := PlanModel(net, opts)
			if err != nil {
				t.Fatalf("%s/%s linear: %v", name, obj, err)
			}
			got, err := PlanGraph(GraphFromNetwork(net), opts)
			if err != nil {
				t.Fatalf("%s/%s graph: %v", name, obj, err)
			}
			wantDoc, err := PlanDocument(want).MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			gotDoc, err := PlanDocument(got).MarshalIndent()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantDoc, gotDoc) {
				t.Errorf("%s/%s: graph document diverged from linear plan", name, obj)
			}
		}
	}
}

// TestGraphDAGBeatsLinear is the headline acceptance check: planning the
// true DAG topology — branch ofmaps held in allocator-managed GLB ranges
// across joins instead of round-tripping through DRAM — never costs more
// than the linear chain, and wins decisively once the GLB has room to park
// branches.
func TestGraphDAGBeatsLinear(t *testing.T) {
	for _, name := range []string{"GoogLeNet", "MobileNetV2"} {
		g, err := BuiltinGraph(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.IsChain() {
			t.Fatalf("%s builtin graph is not a DAG", name)
		}
		for _, kb := range []int{64, 256, 1024} {
			for _, obj := range []Objective{MinAccesses, MinLatency} {
				opts := PlanOptions{GLBKiloBytes: kb, Objective: obj, Strict: true}
				dag, err := PlanGraph(g, opts)
				if err != nil {
					t.Fatalf("%s@%dKB/%s dag: %v", name, kb, obj, err)
				}
				lin, err := PlanModel(g.Network(), opts)
				if err != nil {
					t.Fatalf("%s@%dKB/%s linear: %v", name, kb, obj, err)
				}
				if obj == MinAccesses && dag.AccessElems() > lin.AccessElems() {
					t.Errorf("%s@%dKB: DAG traffic %d exceeds linear %d", name, kb, dag.AccessElems(), lin.AccessElems())
				}
				if obj == MinLatency && dag.LatencyCycles() > lin.LatencyCycles() {
					t.Errorf("%s@%dKB: DAG latency %d exceeds linear %d", name, kb, dag.LatencyCycles(), lin.LatencyCycles())
				}
				if obj == MinAccesses && kb == 1024 && dag.AccessElems() >= lin.AccessElems() {
					t.Errorf("%s@1024KB: DAG traffic %d not strictly below linear %d", name, dag.AccessElems(), lin.AccessElems())
				}
				checkDAGPlanShape(t, dag, g.Network())
			}
		}
	}
}

// checkDAGPlanShape asserts the allocator invariants on a DAG plan and that
// the plan survives the document round trip byte-identically — the same
// verification a peer cache fill runs on receipt.
func checkDAGPlanShape(t *testing.T, dag *Plan, net *Network) {
	t.Helper()
	if len(dag.Schedule) != len(dag.Layers) || len(dag.Tensors) != len(dag.Layers) {
		t.Fatalf("DAG plan carries %d schedule entries and %d tensors for %d layers",
			len(dag.Schedule), len(dag.Tensors), len(dag.Layers))
	}
	for i := range dag.Tensors {
		a := &dag.Tensors[i]
		if a.Producer > a.LastUse || a.LastUse >= len(dag.Layers) {
			t.Fatalf("tensor %s: lifetime [%d, %d] outside schedule", a.Name, a.Producer, a.LastUse)
		}
		if !a.Resident {
			continue
		}
		if a.Base < 0 || a.Base >= a.End || a.End > dag.Cfg.GLBBytes {
			t.Fatalf("tensor %s: range [%d, %d) outside GLB of %d", a.Name, a.Base, a.End, dag.Cfg.GLBBytes)
		}
		if a.End-a.Base != a.Bytes {
			t.Fatalf("tensor %s: range [%d, %d) does not hold %d bytes", a.Name, a.Base, a.End, a.Bytes)
		}
		for j := range dag.Tensors[:i] {
			b := &dag.Tensors[j]
			if !b.Resident || a.Producer > b.LastUse || b.Producer > a.LastUse {
				continue
			}
			if a.End > b.Base && b.End > a.Base {
				t.Fatalf("tensors %s and %s live concurrently in overlapping ranges", a.Name, b.Name)
			}
		}
	}

	doc := PlanDocument(dag)
	raw, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	// Rehydration takes the network in graph node order; doc.Schedule maps
	// plan positions back onto it.
	back, err := RehydratePlan(net, doc)
	if err != nil {
		t.Fatalf("rehydrate: %v", err)
	}
	raw2, err := PlanDocument(back).MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("DAG plan did not survive the document round trip")
	}
}
