package scratchmem_test

import (
	"fmt"

	scratchmem "scratchmem"
)

// ExamplePlanModel plans ResNet18 on the paper's 64 kB unified scratchpad
// and prints the headline quantities.
func ExamplePlanModel() {
	net, err := scratchmem.BuiltinModel("ResNet18")
	if err != nil {
		panic(err)
	}
	plan, err := scratchmem.PlanModel(net, scratchmem.PlanOptions{
		GLBKiloBytes: 64,
		Objective:    scratchmem.MinAccesses,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("layers planned: %d\n", len(plan.Layers))
	fmt.Printf("feasible: %v\n", plan.Feasible())
	fmt.Printf("traffic: %.1f MB\n", float64(plan.AccessBytes())/(1<<20))
	// Output:
	// layers planned: 21
	// feasible: true
	// traffic: 16.4 MB
}

// ExampleBuiltinModel shows the model inventory helpers.
func ExampleBuiltinModel() {
	net, err := scratchmem.BuiltinModel("MobileNet")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d layers, %.1fM params\n",
		net.Name, len(net.Layers), float64(net.Params())/1e6)
	// Output:
	// MobileNet: 28 layers, 4.2M params
}

// ExampleSimulateBaseline runs the separate-buffer baseline the paper
// compares against.
func ExampleSimulateBaseline() {
	net, _ := scratchmem.BuiltinModel("ResNet18")
	splits := scratchmem.BaselineSplits(64, 8)
	res, err := scratchmem.SimulateBaseline(net, splits[0])
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %.0f MB DRAM traffic\n", splits[0].Name, float64(res.DRAMBytes())/(1<<20))
	// Output:
	// sa_25_75: 82 MB DRAM traffic
}
