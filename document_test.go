package scratchmem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestSaveLoadModelRoundTripBytes asserts the on-disk JSON format
// re-serialises byte-identically — the property the content-addressed plan
// cache keys (PlanKey) rest on.
func TestSaveLoadModelRoundTripBytes(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"TinyCNN", "ResNet18", "MobileNet"} {
		net, err := BuiltinModel(name)
		if err != nil {
			t.Fatal(err)
		}
		p1 := filepath.Join(dir, name+"-1.json")
		p2 := filepath.Join(dir, name+"-2.json")
		if err := SaveModel(net, p1); err != nil {
			t.Fatal(err)
		}
		back, err := LoadModel(p1)
		if err != nil {
			t.Fatal(err)
		}
		if err := SaveModel(back, p2); err != nil {
			t.Fatal(err)
		}
		b1, _ := os.ReadFile(p1)
		b2, _ := os.ReadFile(p2)
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: SaveModel/LoadModel round trip is not byte-identical", name)
		}
	}
}

func TestPlanKeyDeterministicAndDiscriminating(t *testing.T) {
	net, err := BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	base := PlanOptions{GLBKiloBytes: 32}
	k1, err := PlanKey(net, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != 64 { // hex SHA-256
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}
	k2, _ := PlanKey(net, base)
	if k1 != k2 {
		t.Error("PlanKey is not deterministic")
	}

	// The same request expressed through an explicit Config hashes
	// identically: keys are built from the resolved configuration.
	k3, _ := PlanKey(net, PlanOptions{Config: DefaultConfig(32)})
	if k3 != k1 {
		t.Error("GLBKiloBytes and the equivalent explicit Config produce different keys")
	}
	// Batch 0 and 1 both mean single inference and must share a key.
	cfg := DefaultConfig(32)
	cfg.Batch = 1
	if k4, _ := PlanKey(net, PlanOptions{Config: cfg}); k4 != k1 {
		t.Error("batch 0 and batch 1 produce different keys")
	}

	// Every plan-shaping knob must change the key.
	variants := []PlanOptions{
		{GLBKiloBytes: 64},
		{GLBKiloBytes: 32, Objective: MinLatency},
		{GLBKiloBytes: 32, Homogeneous: true},
		{GLBKiloBytes: 32, DisablePrefetch: true},
		{GLBKiloBytes: 32, InterLayerReuse: true},
	}
	seen := map[string]int{k1: -1}
	for i, o := range variants {
		k, err := PlanKey(net, o)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("options %d and %d collide on key %s", prev, i, k)
		}
		seen[k] = i
	}

	// A different network must change the key.
	other, _ := BuiltinModel("MobileNet")
	if k, _ := PlanKey(other, base); k == k1 {
		t.Error("different networks share a key")
	}

	if _, err := PlanKey(net, PlanOptions{}); err == nil {
		t.Error("PlanKey accepted options without a GLB size")
	}
}

func TestPlanDocumentRendering(t *testing.T) {
	net, err := BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanModel(net, PlanOptions{GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	doc := PlanDocument(plan)
	if doc.Model != "TinyCNN" || len(doc.Layers) != len(plan.Layers) {
		t.Fatalf("document shape wrong: %+v", doc)
	}
	if doc.Totals.AccessBytes != plan.AccessBytes() || doc.Totals.LatencyCycles != plan.LatencyCycles() {
		t.Error("document totals disagree with the plan")
	}
	b1, err := doc.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := doc.MarshalIndent()
	if !bytes.Equal(b1, b2) {
		t.Error("MarshalIndent is not deterministic")
	}
	if b1[len(b1)-1] != '\n' {
		t.Error("canonical rendering must end in a newline")
	}
	var sb bytes.Buffer
	if err := doc.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), b1) {
		t.Error("Encode differs from MarshalIndent")
	}
}
