package scratchmem

import (
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/policy"
)

// ParseObjective is the inverse of Objective.String: it maps the document
// form ("accesses", "latency") back to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "accesses":
		return MinAccesses, nil
	case "latency":
		return MinLatency, nil
	}
	return 0, fmt.Errorf("scratchmem: unknown objective %q (want accesses or latency)", s)
}

// RehydratePlan rebuilds an executable *Plan from its canonical document
// and the network it was planned for. A PlanDoc stores only the per-layer
// decisions (policy, prefetch, block size, resident flags) — tiny and
// content-addressed — while the estimators are deterministic, so the full
// plan is recomputed from the decisions and verified against the document's
// figures. That makes documents the fleet's transfer format: a peer
// cache-fill or a warm snapshot restore ships the document and the receiver
// rehydrates it into the same Plan the sender computed, byte-identical down
// to the canonical rendering.
//
// The verification doubles as a compatibility audit: if this build's
// estimators disagree with the document (a version-skewed peer, a stale
// snapshot), RehydratePlan reports the mismatch instead of serving a plan
// this binary would not have produced. Degraded documents are refused —
// their fallback rungs are not decision-reproducible — so callers fall back
// to computing locally, which re-runs the ladder.
func RehydratePlan(net *Network, doc *PlanDoc) (*Plan, error) {
	if doc == nil {
		return nil, fmt.Errorf("scratchmem: nil plan document")
	}
	if doc.Degraded {
		return nil, fmt.Errorf("scratchmem: cannot rehydrate a degraded plan (mode %s): recompute locally", doc.DegradedMode)
	}
	if len(doc.Layers) != len(net.Layers) {
		return nil, fmt.Errorf("scratchmem: document has %d layers, network %s has %d", len(doc.Layers), net.Name, len(net.Layers))
	}
	obj, err := ParseObjective(doc.Objective)
	if err != nil {
		return nil, err
	}
	cfg := doc.Config.ToConfig()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scratchmem: document config: %w", err)
	}
	p := &Plan{
		Model:                doc.Model,
		Cfg:                  cfg,
		Objective:            obj,
		Scheme:               doc.Scheme,
		Layers:               make([]core.LayerPlan, len(net.Layers)),
		ChainableTransitions: doc.ChainableTransitions,
	}
	for i := range net.Layers {
		l := &net.Layers[i]
		ld := &doc.Layers[i]
		if ld.Name != l.Name {
			return nil, fmt.Errorf("scratchmem: layer %d is %q in the document but %q in network %s", i, ld.Name, l.Name, net.Name)
		}
		id, ok := policy.ShortID(ld.Policy)
		if !ok {
			return nil, fmt.Errorf("scratchmem: layer %s: unknown policy %q", ld.Name, ld.Policy)
		}
		o := policy.Options{
			Prefetch:      ld.Prefetch,
			ResidentIfmap: ld.ConsumesResident,
			KeepOfmap:     ld.KeepsResident,
		}
		var est policy.Result
		switch {
		case id == policy.FallbackTiled:
			// Per-layer fallback tiling (paper §3.3) is a regular rung of
			// non-degraded plans: when none of the six policies fits a
			// layer, the planner tiles it minimally.
			est = policy.FallbackEstimate(l, o, cfg)
		case ld.N > 0:
			est = policy.EstimateN(l, id, o, cfg, int64(ld.N))
		default:
			est = policy.Estimate(l, id, o, cfg)
		}
		// The document carries the block size only for P4/P5 (other
		// policies have none; the fallback's internal n is fixed at 1).
		nOK := ld.N == 0 || est.N == ld.N
		if est.MemoryBytes != ld.MemoryBytes || est.AccessElems != ld.AccessElems ||
			est.AccessBytes != ld.AccessBytes || est.LatencyCycles != ld.LatencyCycles ||
			!nOK || !est.Feasible {
			return nil, fmt.Errorf(
				"scratchmem: layer %s: document disagrees with this build's %s estimator "+
					"(memory %d vs %d B, accesses %d vs %d, latency %d vs %d, n %d vs %d, feasible %v): version skew?",
				ld.Name, ld.Policy, ld.MemoryBytes, est.MemoryBytes, ld.AccessElems, est.AccessElems,
				ld.LatencyCycles, est.LatencyCycles, ld.N, est.N, est.Feasible)
		}
		p.Layers[i] = core.LayerPlan{
			Layer:            *l,
			Est:              est,
			ConsumesResident: ld.ConsumesResident,
			KeepsResident:    ld.KeepsResident,
		}
	}
	return p, nil
}
