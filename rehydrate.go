package scratchmem

import (
	"fmt"

	"scratchmem/internal/core"
	"scratchmem/internal/policy"
)

// ParseObjective is the inverse of Objective.String: it maps the document
// form ("accesses", "latency") back to an Objective.
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "accesses":
		return MinAccesses, nil
	case "latency":
		return MinLatency, nil
	}
	return 0, fmt.Errorf("scratchmem: unknown objective %q (want accesses or latency)", s)
}

// RehydratePlan rebuilds an executable *Plan from its canonical document
// and the network it was planned for. A PlanDoc stores only the per-layer
// decisions (policy, prefetch, block size, resident flags) — tiny and
// content-addressed — while the estimators are deterministic, so the full
// plan is recomputed from the decisions and verified against the document's
// figures. That makes documents the fleet's transfer format: a peer
// cache-fill or a warm snapshot restore ships the document and the receiver
// rehydrates it into the same Plan the sender computed, byte-identical down
// to the canonical rendering.
//
// The verification doubles as a compatibility audit: if this build's
// estimators disagree with the document (a version-skewed peer, a stale
// snapshot), RehydratePlan reports the mismatch instead of serving a plan
// this binary would not have produced. Degraded documents are refused —
// their fallback rungs are not decision-reproducible — so callers fall back
// to computing locally, which re-runs the ladder.
func RehydratePlan(net *Network, doc *PlanDoc) (*Plan, error) {
	if doc == nil {
		return nil, fmt.Errorf("scratchmem: nil plan document")
	}
	if doc.Degraded {
		return nil, fmt.Errorf("scratchmem: cannot rehydrate a degraded plan (mode %s): recompute locally", doc.DegradedMode)
	}
	if len(doc.Layers) != len(net.Layers) {
		return nil, fmt.Errorf("scratchmem: document has %d layers, network %s has %d", len(doc.Layers), net.Name, len(net.Layers))
	}
	obj, err := ParseObjective(doc.Objective)
	if err != nil {
		return nil, err
	}
	cfg := doc.Config.ToConfig()
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("scratchmem: document config: %w", err)
	}
	// DAG plans carry their execution order: document layer k is network
	// layer Schedule[k]. Linear documents use the identity mapping.
	perm, err := schedulePerm(doc, len(net.Layers))
	if err != nil {
		return nil, err
	}
	p := &Plan{
		Model:                doc.Model,
		Cfg:                  cfg,
		Objective:            obj,
		Scheme:               doc.Scheme,
		Layers:               make([]core.LayerPlan, len(net.Layers)),
		ChainableTransitions: doc.ChainableTransitions,
	}
	if len(doc.Schedule) > 0 {
		p.Schedule = append([]int(nil), doc.Schedule...)
	}
	for i := range net.Layers {
		l := &net.Layers[perm[i]]
		ld := &doc.Layers[i]
		if ld.Name != l.Name {
			return nil, fmt.Errorf("scratchmem: layer %d is %q in the document but %q in network %s", i, ld.Name, l.Name, net.Name)
		}
		id, ok := policy.ShortID(ld.Policy)
		if !ok {
			return nil, fmt.Errorf("scratchmem: layer %s: unknown policy %q", ld.Name, ld.Policy)
		}
		o := policy.Options{
			Prefetch:      ld.Prefetch,
			ResidentIfmap: ld.ConsumesResident,
			KeepOfmap:     ld.KeepsResident,
		}
		var est policy.Result
		switch {
		case id == policy.FallbackTiled:
			// Per-layer fallback tiling (paper §3.3) is a regular rung of
			// non-degraded plans: when none of the six policies fits a
			// layer, the planner tiles it minimally.
			est = policy.FallbackEstimate(l, o, cfg)
		case ld.N > 0:
			est = policy.EstimateN(l, id, o, cfg, int64(ld.N))
		default:
			est = policy.Estimate(l, id, o, cfg)
		}
		// The document carries the block size only for P4/P5 (other
		// policies have none; the fallback's internal n is fixed at 1).
		nOK := ld.N == 0 || est.N == ld.N
		if est.MemoryBytes != ld.MemoryBytes || est.AccessElems != ld.AccessElems ||
			est.AccessBytes != ld.AccessBytes || est.LatencyCycles != ld.LatencyCycles ||
			!nOK || !est.Feasible {
			return nil, fmt.Errorf(
				"scratchmem: layer %s: document disagrees with this build's %s estimator "+
					"(memory %d vs %d B, accesses %d vs %d, latency %d vs %d, n %d vs %d, feasible %v): version skew?",
				ld.Name, ld.Policy, ld.MemoryBytes, est.MemoryBytes, ld.AccessElems, est.AccessElems,
				ld.LatencyCycles, est.LatencyCycles, ld.N, est.N, est.Feasible)
		}
		p.Layers[i] = core.LayerPlan{
			Layer:            *l,
			Est:              est,
			ConsumesResident: ld.ConsumesResident,
			KeepsResident:    ld.KeepsResident,
		}
	}
	tensors, err := rehydrateTensors(p, doc)
	if err != nil {
		return nil, err
	}
	p.Tensors = tensors
	return p, nil
}

// schedulePerm validates doc.Schedule as a permutation of [0, layers) and
// returns it, or the identity when the document has no schedule (every
// linear plan).
func schedulePerm(doc *PlanDoc, layers int) ([]int, error) {
	perm := make([]int, layers)
	if len(doc.Schedule) == 0 {
		for i := range perm {
			perm[i] = i
		}
		return perm, nil
	}
	if len(doc.Schedule) != layers {
		return nil, fmt.Errorf("scratchmem: document schedule has %d entries for %d layers", len(doc.Schedule), layers)
	}
	seen := make([]bool, layers)
	for k, i := range doc.Schedule {
		if i < 0 || i >= layers || seen[i] {
			return nil, fmt.Errorf("scratchmem: document schedule is not a permutation (entry %d = %d)", k, i)
		}
		seen[i] = true
		perm[k] = i
	}
	return perm, nil
}

// rehydrateTensors verifies a DAG document's tensor table against the
// rebuilt plan — the allocator invariants a healthy planner can never
// violate — and converts it. Every range must sit inside the GLB and match
// the tensor's size, lifetimes must nest inside the schedule, tensors whose
// lifetimes overlap must occupy disjoint ranges, and each tensor must be
// named after the layer at its producing step. A violation means the
// document was corrupted or produced by a broken peer; refusing it keeps
// cache fills from propagating an unexecutable plan.
func rehydrateTensors(p *Plan, doc *PlanDoc) ([]core.TensorPlan, error) {
	if len(doc.Tensors) == 0 {
		return nil, nil
	}
	L := len(p.Layers)
	out := make([]core.TensorPlan, len(doc.Tensors))
	for i := range doc.Tensors {
		td := &doc.Tensors[i]
		if td.Producer < 0 || td.Producer > td.LastUse || td.LastUse >= L {
			return nil, fmt.Errorf("scratchmem: tensor %s: lifetime [%d, %d] outside schedule of %d steps",
				td.Name, td.Producer, td.LastUse, L)
		}
		prodLayer := &p.Layers[td.Producer].Layer
		if td.Name != prodLayer.Name {
			return nil, fmt.Errorf("scratchmem: tensor %s: producing step %d runs layer %s", td.Name, td.Producer, prodLayer.Name)
		}
		elems := prodLayer.OfmapElems()
		if want := p.Cfg.Bytes(elems); td.Bytes != want {
			return nil, fmt.Errorf("scratchmem: tensor %s: document says %d bytes, layer ofmap is %d", td.Name, td.Bytes, want)
		}
		switch td.Spill {
		case "", core.SpillEvict, core.SpillRecompute:
		default:
			return nil, fmt.Errorf("scratchmem: tensor %s: unknown spill strategy %q", td.Name, td.Spill)
		}
		if td.Resident {
			if td.Spill != "" {
				return nil, fmt.Errorf("scratchmem: tensor %s: resident and spilled at once", td.Name)
			}
			if td.Base < 0 || td.Base >= td.End || td.End > p.Cfg.GLBBytes {
				return nil, fmt.Errorf("scratchmem: tensor %s: range [%d, %d) outside GLB of %d bytes",
					td.Name, td.Base, td.End, p.Cfg.GLBBytes)
			}
			if td.End-td.Base != td.Bytes {
				return nil, fmt.Errorf("scratchmem: tensor %s: range [%d, %d) does not hold %d bytes",
					td.Name, td.Base, td.End, td.Bytes)
			}
		} else if td.Base != 0 || td.End != 0 {
			return nil, fmt.Errorf("scratchmem: tensor %s: non-resident but carries range [%d, %d)", td.Name, td.Base, td.End)
		}
		out[i] = core.TensorPlan{
			Name: td.Name, Producer: td.Producer, LastUse: td.LastUse,
			Elems: elems, Bytes: td.Bytes,
			Resident: td.Resident, Base: td.Base, End: td.End, Spill: td.Spill,
		}
	}
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			a, b := &out[i], &out[j]
			if !a.Resident || !b.Resident {
				continue
			}
			if a.Producer <= b.LastUse && b.Producer <= a.LastUse &&
				a.End > b.Base && b.End > a.Base {
				return nil, fmt.Errorf("scratchmem: tensors %s and %s live concurrently in overlapping ranges [%d, %d) and [%d, %d)",
					a.Name, b.Name, a.Base, a.End, b.Base, b.End)
			}
		}
	}
	return out, nil
}
