package scratchmem

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scratchmem/internal/model"
)

// TestShippedTopologiesInSync verifies the SCALE-Sim-compatible topology
// files under topologies/ stay byte-identical to what the builders emit —
// they are the interchange artefacts users feed to SCALE-Sim itself.
func TestShippedTopologiesInSync(t *testing.T) {
	names := append(model.BuiltinNames(), "AlexNet", "VGG16", "TinyCNN")
	for _, name := range names {
		n, err := model.Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		var want strings.Builder
		if err := n.WriteTopologyCSV(&want); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join("topologies", n.Name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v (regenerate the file with WriteTopologyCSV)", name, err)
		}
		if string(got) != want.String() {
			t.Errorf("topologies/%s.csv is stale; regenerate from the builder", n.Name)
		}
		// And it must load back as a valid network of the same dimensions.
		back, err := LoadModel(filepath.Join("topologies", n.Name+".csv"))
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if len(back.Layers) != len(n.Layers) {
			t.Errorf("%s: reload lost layers (%d != %d)", name, len(back.Layers), len(n.Layers))
		}
	}
}
