package scratchmem

import (
	"context"
	"errors"
	"testing"
)

// TestPlanModelCtxCancelMidModel is the façade's promptness guarantee: a
// context canceled partway through a multi-layer plan makes PlanModelCtx
// return within one layer's work, with context.Canceled visible through
// the wrapping and the stopped layer identified by a LayerError.
func TestPlanModelCtxCancelMidModel(t *testing.T) {
	net, err := BuiltinModel("GoogLeNet")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	const cancelAfter = 3
	var events []ProgressEvent
	prog := func(ev ProgressEvent) {
		events = append(events, ev)
		if len(events) == cancelAfter {
			cancel()
		}
	}
	p, err := PlanModelCtx(ctx, net, PlanOptions{GLBKiloBytes: 64}, prog)
	if p != nil || err == nil {
		t.Fatalf("PlanModelCtx after cancel = (%v, %v), want (nil, error)", p, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error does not wrap context.Canceled: %v", err)
	}
	if !IsCanceled(err) {
		t.Errorf("IsCanceled(%v) = false", err)
	}
	var le *LayerError
	if !errors.As(err, &le) {
		t.Fatalf("error does not localise the stopped layer: %v", err)
	}
	// "Within one layer's work of cancel": the planner may finish the layer
	// in flight when cancel lands, but must not start another after it.
	if le.Index > cancelAfter {
		t.Errorf("planner stopped at layer %d, cancel landed during layer %d", le.Index, cancelAfter-1)
	}
	if got := len(events); got > cancelAfter+1 {
		t.Errorf("%d progress events after canceling at %d — planner kept going", got, cancelAfter)
	}
	if got := len(net.Layers); len(events) >= got {
		t.Errorf("planner emitted all %d layer events despite mid-model cancel", got)
	}
}

// TestDSEAccessElemsCtxCancel mirrors the promptness guarantee for the
// exhaustive grid search, the most expensive entry point.
func TestDSEAccessElemsCtxCancel(t *testing.T) {
	net, err := BuiltinModel("GoogLeNet")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var layers int
	prog := func(ev ProgressEvent) {
		if layers++; layers == 2 {
			cancel()
		}
	}
	_, _, err = DSEAccessElemsCtx(ctx, net, DefaultConfig(64), prog)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	var le *LayerError
	if !errors.As(err, &le) {
		t.Errorf("DSE cancellation not localised to a layer: %v", err)
	}
}

// TestCtxEntryPointsAgreeWithLegacyForms pins the wrapper contract: with a
// background context and no hook, every *Ctx form returns exactly what its
// context-free original does.
func TestCtxEntryPointsAgreeWithLegacyForms(t *testing.T) {
	net, err := BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	opts := PlanOptions{GLBKiloBytes: 32}
	p1, err := PlanModel(net, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanModelCtx(context.Background(), net, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1.AccessElems() != p2.AccessElems() || p1.LatencyCycles() != p2.LatencyCycles() {
		t.Errorf("PlanModelCtx diverges from PlanModel: %d/%d vs %d/%d elems/cycles",
			p2.AccessElems(), p2.LatencyCycles(), p1.AccessElems(), p1.LatencyCycles())
	}
	m1, e1, err := SimulatePlan(p1)
	if err != nil {
		t.Fatal(err)
	}
	m2, e2, err := SimulatePlanCtx(context.Background(), p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 || e1 != e2 {
		t.Errorf("SimulatePlanCtx diverges: (%d, %d) vs (%d, %d)", m2, e2, m1, e1)
	}
	elems1, feas1 := DSEAccessElems(net, DefaultConfig(32))
	elems2, feas2, err := DSEAccessElemsCtx(context.Background(), net, DefaultConfig(32), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elems1 != elems2 || feas1 != feas2 {
		t.Errorf("DSEAccessElemsCtx diverges: (%d, %v) vs (%d, %v)", elems2, feas2, elems1, feas1)
	}
}

// TestProgressEventsCoverEveryLayer pins the hook contract: one "plan"
// event per layer, in order, with running totals.
func TestProgressEventsCoverEveryLayer(t *testing.T) {
	net, err := BuiltinModel("ResNet18")
	if err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	p, err := PlanModelCtx(context.Background(), net, PlanOptions{GLBKiloBytes: 64},
		func(ev ProgressEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(net.Layers) {
		t.Fatalf("%d events for %d layers", len(events), len(net.Layers))
	}
	for i, ev := range events {
		if ev.Phase != "plan" || ev.Index != i || ev.Total != len(net.Layers) {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	last := events[len(events)-1]
	if last.AccessElems != p.AccessElems() {
		t.Errorf("final running total %d != plan total %d", last.AccessElems, p.AccessElems())
	}
}
