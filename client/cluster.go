package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"scratchmem/internal/cluster"
	"scratchmem/internal/server"
)

// PlanBatch plans many requests in one round trip through POST
// /v1/plan/batch. The server shares one estimate memo across the whole
// batch, so a DSE-style sweep is substantially cheaper than the same
// requests issued one by one. Items succeed and fail independently; check
// each BatchItem.Status.
func (c *Client) PlanBatch(ctx context.Context, reqs []server.PlanRequest) (*server.BatchResponse, error) {
	body, err := c.do(ctx, http.MethodPost, "/v1/plan/batch", server.BatchRequest{Requests: reqs})
	if err != nil {
		return nil, err
	}
	var res server.BatchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid batch response: %w", err)
	}
	return &res, nil
}

// PeerFill asks the server to compute (or serve from cache) a plan on its
// own, never forwarding to another ring member. It is the sending half of
// the cluster cache-fill protocol; the body is the canonical plan document,
// byte-identical to POST /v1/plan.
func (c *Client) PeerFill(ctx context.Context, req server.PlanRequest) ([]byte, error) {
	return c.do(ctx, http.MethodPost, "/v1/peer/fill", req)
}

// Snapshot fetches the server's cache snapshot stream (GET
// /v1/cache/snapshot): newline-delimited SnapshotRecord JSON, most recently
// used first, ready to feed server.RestoreSnapshot on another node. The
// stream is verified against the server's X-SMM-Snapshot-Entries count: a
// body truncated by a dropped connection surfaces as *PartialStreamError
// (retried like any transient failure, since 503s and truncation both pass
// through the same backoff loop with its Retry-After floor).
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	return c.doChecked(ctx, c.BaseURL, http.MethodGet, "/v1/cache/snapshot", nil, checkSnapshotComplete)
}

// checkSnapshotComplete compares received ndjson records against the
// server-advertised count. No header means no claim (nothing to verify).
func checkSnapshotComplete(body []byte, hdr http.Header) error {
	h := hdr.Get("X-SMM-Snapshot-Entries")
	if h == "" {
		return nil
	}
	want, err := strconv.Atoi(h)
	if err != nil || want < 0 {
		return nil
	}
	got := 0
	for _, line := range strings.Split(string(body), "\n") {
		if strings.TrimSpace(line) != "" {
			got++
		}
	}
	if got != want {
		return &PartialStreamError{Got: got, Want: want}
	}
	return nil
}

// Version fetches the server's build information.
func (c *Client) Version(ctx context.Context) (*server.VersionInfo, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/version", nil)
	if err != nil {
		return nil, err
	}
	var v server.VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, fmt.Errorf("client: invalid version response: %w", err)
	}
	return &v, nil
}

// Transport adapts the client into a cluster.Transport: peer fills go to
// whichever member owns the key, through this client's retry policy and
// backoff seams. The client's own BaseURL is ignored for these calls —
// configure a dedicated Client (typically with few or no retries, since the
// Peer backend already breaks the circuit and falls back to planning
// locally) and hand its Transport to cluster.NewPeer.
func (c *Client) Transport() cluster.Transport {
	return cluster.TransportFunc(func(ctx context.Context, baseURL string, request any) ([]byte, error) {
		return c.doAt(ctx, strings.TrimRight(baseURL, "/"), http.MethodPost, "/v1/peer/fill", request)
	})
}

// ProbeTransport adapts the client into a cluster.ProbeFunc: one GET
// /healthz per call, deliberately without the retry loop — the health
// tracker is itself the retry policy (consecutive failures, probe period),
// and retrying inside a probe would mask exactly the slowness it measures.
func (c *Client) ProbeTransport() cluster.ProbeFunc {
	return func(ctx context.Context, baseURL string) error {
		_, _, err := c.once(ctx, strings.TrimRight(baseURL, "/"), http.MethodGet, "/healthz", nil)
		return err
	}
}

// LookupTransport adapts the client into a cluster.LookupFunc: a
// cached-only peer fill (POST /v1/peer/fill?cached=only) that can never
// trigger a compute on the asked member. A 404 — the member simply holds no
// replica — maps to cluster.ErrNoReplica so the Peer backend can tell "no
// copy" from "member broken".
func (c *Client) LookupTransport() cluster.LookupFunc {
	return func(ctx context.Context, baseURL string, request any) ([]byte, error) {
		body, err := c.doAt(ctx, strings.TrimRight(baseURL, "/"), http.MethodPost, "/v1/peer/fill?cached=only", request)
		var ae *APIError
		if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
			return nil, cluster.ErrNoReplica
		}
		return body, err
	}
}

// ReplicateTransport adapts the client into a cluster.PushFunc: POST
// /v1/peer/replicate delivering one snapshot record to a ring successor.
func (c *Client) ReplicateTransport() cluster.PushFunc {
	return func(ctx context.Context, baseURL string, payload any) error {
		_, err := c.doAt(ctx, strings.TrimRight(baseURL, "/"), http.MethodPost, "/v1/peer/replicate", payload)
		return err
	}
}

// InvalidateTransport adapts the client into a cluster.InvalidateFunc — the
// fan-out half of fleet-wide invalidation. Deliveries carry fanout=no so
// the receiving member applies locally and never re-fans out.
func (c *Client) InvalidateTransport() cluster.InvalidateFunc {
	return func(ctx context.Context, baseURL, key string) error {
		base := strings.TrimRight(baseURL, "/")
		var err error
		if key == "" {
			_, err = c.doAt(ctx, base, http.MethodPost, "/v1/cache/purge?fanout=no", nil)
		} else {
			_, err = c.doAt(ctx, base, http.MethodDelete, "/v1/cache/"+url.PathEscape(key)+"?fanout=no", nil)
		}
		return err
	}
}

// Invalidate removes one plan key (and its derived artifacts) fleet-wide:
// the addressed member applies it locally and fans it out to every live
// peer. The response reports per-member outcomes.
func (c *Client) Invalidate(ctx context.Context, key string) (*server.InvalidateResponse, error) {
	body, err := c.do(ctx, http.MethodDelete, "/v1/cache/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, err
	}
	var res server.InvalidateResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid invalidate response: %w", err)
	}
	return &res, nil
}

// Purge empties the plan caches fleet-wide (POST /v1/cache/purge).
func (c *Client) Purge(ctx context.Context) (*server.PurgeResponse, error) {
	body, err := c.do(ctx, http.MethodPost, "/v1/cache/purge", nil)
	if err != nil {
		return nil, err
	}
	var res server.PurgeResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid purge response: %w", err)
	}
	return &res, nil
}

// ClusterStatus fetches the addressed member's liveness view of the fleet.
func (c *Client) ClusterStatus(ctx context.Context) (*server.ClusterStatus, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/cluster/status", nil)
	if err != nil {
		return nil, err
	}
	var res server.ClusterStatus
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid cluster status response: %w", err)
	}
	return &res, nil
}

// StatusTransport adapts the client into a cluster.StatusFunc: one GET
// /v1/cluster/status against any member, through this client's retry
// policy — the fan-out primitive behind GET /v1/cluster/overview.
func (c *Client) StatusTransport() cluster.StatusFunc {
	return func(ctx context.Context, baseURL string) ([]byte, error) {
		return c.doAt(ctx, strings.TrimRight(baseURL, "/"), http.MethodGet, "/v1/cluster/status", nil)
	}
}

// ClusterOverview fetches the merged fleet view as seen by the addressed
// member: every member's own status (or a per-member error stub), ring
// ownership shares, and fleet totals. smm-top polls exactly this.
func (c *Client) ClusterOverview(ctx context.Context) (*server.OverviewResponse, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/cluster/overview", nil)
	if err != nil {
		return nil, err
	}
	var res server.OverviewResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid cluster overview response: %w", err)
	}
	return &res, nil
}
