package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"scratchmem/internal/cluster"
	"scratchmem/internal/server"
)

// PlanBatch plans many requests in one round trip through POST
// /v1/plan/batch. The server shares one estimate memo across the whole
// batch, so a DSE-style sweep is substantially cheaper than the same
// requests issued one by one. Items succeed and fail independently; check
// each BatchItem.Status.
func (c *Client) PlanBatch(ctx context.Context, reqs []server.PlanRequest) (*server.BatchResponse, error) {
	body, err := c.do(ctx, http.MethodPost, "/v1/plan/batch", server.BatchRequest{Requests: reqs})
	if err != nil {
		return nil, err
	}
	var res server.BatchResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid batch response: %w", err)
	}
	return &res, nil
}

// PeerFill asks the server to compute (or serve from cache) a plan on its
// own, never forwarding to another ring member. It is the sending half of
// the cluster cache-fill protocol; the body is the canonical plan document,
// byte-identical to POST /v1/plan.
func (c *Client) PeerFill(ctx context.Context, req server.PlanRequest) ([]byte, error) {
	return c.do(ctx, http.MethodPost, "/v1/peer/fill", req)
}

// Snapshot fetches the server's cache snapshot stream (GET
// /v1/cache/snapshot): newline-delimited SnapshotRecord JSON, most recently
// used first, ready to feed server.RestoreSnapshot on another node.
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/cache/snapshot", nil)
}

// Version fetches the server's build information.
func (c *Client) Version(ctx context.Context) (*server.VersionInfo, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/version", nil)
	if err != nil {
		return nil, err
	}
	var v server.VersionInfo
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, fmt.Errorf("client: invalid version response: %w", err)
	}
	return &v, nil
}

// Transport adapts the client into a cluster.Transport: peer fills go to
// whichever member owns the key, through this client's retry policy and
// backoff seams. The client's own BaseURL is ignored for these calls —
// configure a dedicated Client (typically with few or no retries, since the
// Peer backend already breaks the circuit and falls back to planning
// locally) and hand its Transport to cluster.NewPeer.
func (c *Client) Transport() cluster.Transport {
	return cluster.TransportFunc(func(ctx context.Context, baseURL string, request any) ([]byte, error) {
		return c.doAt(ctx, strings.TrimRight(baseURL, "/"), http.MethodPost, "/v1/peer/fill", request)
	})
}
