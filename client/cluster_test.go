package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scratchmem/internal/obs"
	"scratchmem/internal/server"
)

// TestPeerFillFlappingPeer pins the retry contract the cluster transport
// leans on: a peer that sheds twice with Retry-After: 2 and then answers is
// still a successful fill, and every backoff respected the 2s floor rather
// than the (much smaller) jittered default.
func TestPeerFillFlappingPeer(t *testing.T) {
	var calls atomic.Int32
	planBody := []byte(`{"model": "TinyCNN"}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/peer/fill" {
			t.Errorf("peer fill hit %s", r.URL.Path)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error": "shed"}`))
			return
		}
		w.Write(planBody)
	}))
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	body, err := c.PeerFill(context.Background(), server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, planBody) {
		t.Errorf("fill body = %s", body)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("peer saw %d calls, want 3", n)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d < 2*time.Second {
			t.Errorf("backoff %d = %v, below the 2s Retry-After floor", i, d)
		}
	}
}

// TestPeerFillRetryBudgetExhausted: when the flapping peer's Retry-After
// floor cannot fit inside the caller's deadline, the client gives up
// immediately — no sleep, no extra attempt — and surfaces the underlying
// 503 inside a budget error so the Peer backend can fall back to planning
// locally with the deadline still mostly intact.
func TestPeerFillRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error": "shed"}`))
	}))
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.PeerFill(ctx, server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("budget-bounded fill took %v", elapsed)
	}
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want a retry-budget error", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Errorf("err = %v, want the underlying 503 preserved", err)
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Errorf("exhausted budget: %d calls, %d sleeps; want 1, 0", calls.Load(), len(slept))
	}
}

// TestPlanBatchAgainstRealServer round-trips a small mixed batch: healthy
// items return documents, the broken one carries its own 400 without
// failing the call.
func TestPlanBatchAgainstRealServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	res, err := c.PlanBatch(context.Background(), []server.PlanRequest{
		{Model: "TinyCNN", GLBKiloBytes: 32},
		{Model: "NoSuchNet", GLBKiloBytes: 32},
		{Model: "TinyCNN", GLBKiloBytes: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("batch returned %d results, want 3", len(res.Results))
	}
	for _, i := range []int{0, 2} {
		item := res.Results[i]
		if item.Status != http.StatusOK || len(item.Plan) == 0 {
			t.Errorf("item %d: status %d, %d plan bytes (%s)", i, item.Status, len(item.Plan), item.Error)
		}
	}
	if res.Results[1].Status != http.StatusBadRequest {
		t.Errorf("bad item status %d, want 400", res.Results[1].Status)
	}
	if len(slept) != 0 {
		t.Errorf("healthy batch slept %v", slept)
	}
}

// TestSnapshotFetchAndRestore moves a warm cache between servers through
// the client: plan on A, Snapshot, RestoreSnapshot into B, and B's first
// request is already a cache hit serving the identical document.
func TestSnapshotFetchAndRestore(t *testing.T) {
	srvA := server.New(server.Config{})
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	var slept []time.Duration
	c := testClient(tsA, &slept)

	want, err := c.PlanRaw(context.Background(), server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	srvB := server.New(server.Config{})
	added, skipped, err := srvB.RestoreSnapshot(bytes.NewReader(snap))
	if err != nil || added != 1 || skipped != 0 {
		t.Fatalf("RestoreSnapshot = (%d, %d, %v), want (1, 0, nil)", added, skipped, err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	resp, err := http.Post(tsB.URL+"/v1/plan", "application/json", strings.NewReader(`{"model": "TinyCNN", "glb_kb": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := resp.Header.Get("X-SMM-Cache"); hdr != "hit" {
		t.Errorf("restored server X-SMM-Cache = %q, want hit", hdr)
	}
	if !bytes.Equal(got, want) {
		t.Error("restored server served a different document")
	}
}

// TestTransportAddressesThePeer: the cluster.Transport adapter posts the
// wire request to the base URL it is handed, not the client's own.
func TestTransportAddressesThePeer(t *testing.T) {
	var gotPath atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath.Store(r.URL.Path)
		var req server.PlanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Model != "TinyCNN" {
			t.Errorf("peer fill body: model=%q err=%v", req.Model, err)
		}
		w.Write([]byte(`{"model": "TinyCNN"}`))
	}))
	defer peer.Close()
	c := New("http://client-base-url-must-not-be-used.invalid")
	c.MaxRetries = -1

	body, err := c.Transport().Fill(context.Background(), peer.URL+"/", server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Error("empty fill body")
	}
	if p, _ := gotPath.Load().(string); p != "/v1/peer/fill" {
		t.Errorf("fill hit %q, want /v1/peer/fill", p)
	}
}

// TestVersionOverTheWire: GET /v1/version decodes through the client.
func TestVersionOverTheWire(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	v, err := c.Version(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.Module != "scratchmem" || !strings.HasPrefix(v.Go, "go") {
		t.Errorf("version = %+v", v)
	}
}

// TestClientInjectsTraceparent: every request through the client carries
// the caller's trace context as the X-SMM-Traceparent header — the single
// funnel that makes fleet traces cross process boundaries.
func TestClientInjectsTraceparent(t *testing.T) {
	var gotHeader atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotHeader.Store(r.Header.Get(obs.TraceparentHeader))
		w.Write([]byte(`{"module": "scratchmem", "go": "go0"}`))
	}))
	defer ts.Close()
	c := New(ts.URL)
	c.MaxRetries = -1

	tr := obs.NewTracer(4)
	ctx, span := obs.StartSpan(obs.WithTracer(context.Background(), tr), "request")
	if _, err := c.Version(ctx); err != nil {
		t.Fatal(err)
	}
	want := obs.TraceContext{TraceID: span.TraceID, ParentID: span.SpanID}
	if got, _ := gotHeader.Load().(string); got != want.String() {
		t.Errorf("traceparent header = %q, want %q", got, want.String())
	}
	span.End()

	// Without an active span there is nothing to propagate: no header.
	if _, err := c.Version(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, _ := gotHeader.Load().(string); got != "" {
		t.Errorf("traceparent header = %q on a span-less request, want absent", got)
	}
}

// TestClusterOverviewOverTheWire: the overview document round-trips
// through the typed client accessor, and StatusTransport pulls a member's
// raw status document.
func TestClusterOverviewOverTheWire(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	c := New(ts.URL)
	c.MaxRetries = -1

	ov, err := c.ClusterOverview(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A standalone server answers with its own single full-share row.
	if len(ov.Members) != 1 || ov.Members[0].RingShare != 1 || ov.Totals.Reachable != 1 {
		t.Errorf("standalone overview = %+v", ov)
	}

	body, err := c.StatusTransport()(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var st server.ClusterStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status transport body does not decode: %v: %s", err, body)
	}
}
