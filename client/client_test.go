package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/core"
	"scratchmem/internal/server"
)

// testClient wires a Client to ts with recorded (not slept) backoffs and a
// deterministic jitter source.
func testClient(ts *httptest.Server, slept *[]time.Duration) *Client {
	c := New(ts.URL)
	c.rng = rand.New(rand.NewSource(1))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return c
}

func TestPlanAgainstRealServer(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	doc, err := c.Plan(context.Background(), server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if doc.Model != "TinyCNN" || doc.Degraded || len(doc.Layers) == 0 {
		t.Errorf("unexpected plan doc: model=%q degraded=%v layers=%d", doc.Model, doc.Degraded, len(doc.Layers))
	}
	if len(slept) != 0 {
		t.Errorf("healthy request slept %v", slept)
	}

	sim, err := c.Simulate(context.Background(), server.SimulateRequest{PlanRequest: server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32}})
	if err != nil {
		t.Fatal(err)
	}
	if sim.MeasuredCycles <= 0 {
		t.Errorf("simulate returned %+v", sim)
	}

	models, err := c.Models(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Error("no models listed")
	}
}

// TestDegradedAndStrictOverTheWire: the ladder's two faces map through the
// client — degraded 200 decodes with its reason chain, strict 422 satisfies
// errors.Is(err, scratchmem.ErrInfeasible) without any retries.
func TestDegradedAndStrictOverTheWire(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	doc, err := c.Plan(context.Background(), server.PlanRequest{Model: "ResNet18", GLBKiloBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !doc.Degraded || doc.DegradedMode != core.DegradedBaseline || len(doc.DegradedReasons) == 0 {
		t.Errorf("degraded plan lost its record over the wire: %+v", doc)
	}

	_, err = c.Plan(context.Background(), server.PlanRequest{Model: "ResNet18", GLBKiloBytes: 1, Strict: true})
	if !errors.Is(err, scratchmem.ErrInfeasible) {
		t.Fatalf("strict err = %v, want ErrInfeasible", err)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusUnprocessableEntity {
		t.Errorf("err = %v, want APIError with status 422", err)
	}
	if len(slept) != 0 {
		t.Errorf("terminal 422 triggered retries: slept %v", slept)
	}
}

// TestRetriesTransientThenSucceeds: 503s with Retry-After are retried, the
// hint floors the jittered backoff, and the eventual 200 wins.
func TestRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error": "shed"}`))
			return
		}
		w.Write([]byte(`{"model": "TinyCNN"}`))
	}))
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	doc, err := c.Plan(context.Background(), server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if err != nil || doc.Model != "TinyCNN" {
		t.Fatalf("Plan = (%+v, %v), want success on third attempt", doc, err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3", n)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	for i, d := range slept {
		if d < 2*time.Second {
			t.Errorf("backoff %d = %v, below the 2s Retry-After floor", i, d)
		}
	}
}

// TestTerminalErrorsDoNotRetry: 400 maps to ErrBadModel and is never
// retried.
func TestTerminalErrorsDoNotRetry(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error": "no such model"}`))
	}))
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	_, err := c.Plan(context.Background(), server.PlanRequest{Model: "nope", GLBKiloBytes: 32})
	if !errors.Is(err, scratchmem.ErrBadModel) {
		t.Fatalf("err = %v, want ErrBadModel", err)
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Errorf("terminal 400: %d calls, %d sleeps; want 1, 0", calls.Load(), len(slept))
	}
}

// TestRetriesExhausted: a persistently failing server consumes MaxRetries
// and surfaces the last APIError.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error": "kaboom"}`))
	}))
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)
	c.MaxRetries = 2

	_, err := c.Plan(context.Background(), server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want the final 500", err)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 1 + 2 retries", n)
	}
}

// TestDeadlineBudget: when the remaining deadline cannot cover the next
// backoff, the client stops immediately and reports the last real failure
// instead of sleeping into certain expiry.
func TestDeadlineBudget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	var slept []time.Duration
	c := testClient(ts, &slept)

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Plan(ctx, server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if elapsed := time.Since(start); elapsed > 400*time.Millisecond {
		t.Errorf("budget-bounded call took %v", elapsed)
	}
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want the underlying 503 inside the budget error", err)
	}
	if len(slept) != 0 {
		t.Errorf("client slept %v with a 30s floor and a 500ms budget", slept)
	}
}

// TestNetworkErrorsRetry: connection failures are transient too.
func TestNetworkErrorsRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close() // nothing listens any more
	var slept []time.Duration
	c := New(url)
	c.rng = rand.New(rand.NewSource(1))
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	c.MaxRetries = 2

	_, err := c.Plan(context.Background(), server.PlanRequest{Model: "TinyCNN", GLBKiloBytes: 32})
	if err == nil {
		t.Fatal("dead server answered")
	}
	if errors.Is(err, scratchmem.ErrBadModel) || errors.Is(err, scratchmem.ErrInfeasible) {
		t.Errorf("network error misclassified as terminal: %v", err)
	}
	if len(slept) != 2 {
		t.Errorf("slept %d times, want 2 (network errors retry)", len(slept))
	}
}

// TestBackoffShape: full jitter stays within [0, min(base<<attempt, max)]
// and a Retry-After hint floors it.
func TestBackoffShape(t *testing.T) {
	c := New("http://unused")
	c.rng = rand.New(rand.NewSource(42))
	c.BaseDelay = 100 * time.Millisecond
	c.MaxDelay = time.Second
	for attempt := 0; attempt < 10; attempt++ {
		ceil := c.BaseDelay << attempt
		if ceil > c.MaxDelay || ceil <= 0 {
			ceil = c.MaxDelay
		}
		for i := 0; i < 50; i++ {
			if d := c.backoff(attempt, &APIError{Status: 503}); d < 0 || d > ceil {
				t.Fatalf("attempt %d: backoff %v outside [0, %v]", attempt, d, ceil)
			}
		}
	}
	floor := 3 * time.Second
	for i := 0; i < 50; i++ {
		if d := c.backoff(0, &APIError{Status: 503, RetryAfter: floor}); d < floor {
			t.Fatalf("backoff %v below Retry-After floor %v", d, floor)
		}
	}
}

// TestRetryableClassification pins the status table.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{&APIError{Status: 400}, false},
		{&APIError{Status: 404}, false},
		{&APIError{Status: 422}, false},
		{&APIError{Status: 429}, true},
		{&APIError{Status: 500}, true},
		{&APIError{Status: 502}, true},
		{&APIError{Status: 503}, true},
		{&APIError{Status: 504}, true},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{errors.New("connection refused"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
