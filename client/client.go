// Package client is a resilient Go client for the smm-serve planning
// service. Transient failures — load shedding (503 + Retry-After), open
// circuit breakers, recovered panics (500), network errors — are retried
// with capped exponential backoff and full jitter, honouring the server's
// Retry-After hint as a floor and the context deadline as the overall
// retry budget. Terminal failures map back onto the scratchmem error
// taxonomy: a 400 response satisfies errors.Is(err, scratchmem.ErrBadModel)
// and a 422 satisfies errors.Is(err, scratchmem.ErrInfeasible), so callers
// classify remote and local planning failures with the same code.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/obs"
	"scratchmem/internal/server"
)

// Defaults for the zero-valued Client fields.
const (
	// DefaultMaxRetries is the number of retries after the first attempt.
	DefaultMaxRetries = 4
	// DefaultBaseDelay seeds the exponential backoff (doubled per attempt).
	DefaultBaseDelay = 100 * time.Millisecond
	// DefaultMaxDelay caps a single backoff sleep.
	DefaultMaxDelay = 5 * time.Second
)

// Client talks to one smm-serve base URL. The zero value with a BaseURL is
// usable; other fields default sensibly. Clients are safe for concurrent
// use.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// MaxRetries is the number of retries after the first attempt
	// (DefaultMaxRetries when 0, no retries when negative).
	MaxRetries int
	// BaseDelay and MaxDelay shape the backoff (defaults above).
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// mu guards rng; both are test seams as much as implementation detail.
	mu  sync.Mutex
	rng *rand.Rand
	// sleep replaces the backoff sleep in tests; nil means a real timer
	// that aborts when ctx does.
	sleep func(ctx context.Context, d time.Duration) error
}

// New returns a Client for the given base URL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

// APIError is a non-200 response. It unwraps to the scratchmem taxonomy
// where a mapping exists, so errors.Is works across the wire.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error text.
	Message string
	// RetryAfter is the parsed Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// Unwrap maps the wire status back onto the local error taxonomy.
func (e *APIError) Unwrap() error {
	switch e.Status {
	case http.StatusBadRequest:
		return scratchmem.ErrBadModel
	case http.StatusUnprocessableEntity:
		return scratchmem.ErrInfeasible
	}
	return nil
}

// PartialStreamError reports a snapshot stream that ended before the
// server-advertised record count arrived: the connection dropped mid-body
// but after the 200 status, so no APIError exists to classify. It unwraps
// to io.ErrUnexpectedEOF (the historical sentinel) and is retryable.
type PartialStreamError struct {
	// Got and Want are received vs advertised record counts.
	Got, Want int
}

func (e *PartialStreamError) Error() string {
	return fmt.Sprintf("client: partial snapshot stream: got %d of %d records", e.Got, e.Want)
}

func (e *PartialStreamError) Unwrap() error { return io.ErrUnexpectedEOF }

// Retryable reports whether err is worth another attempt: a transient
// server status (429, 500, 502, 503, 504 — shed queues, open breakers,
// recovered panics, proxies mid-restart) or a transport error. Client
// mistakes (4xx) and context expiry are terminal.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		// Not an HTTP response at all: the connection failed somewhere en
		// route, which is the classic transient failure.
		return true
	}
	switch ae.Status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Plan asks the server for an execution plan and decodes the document.
func (c *Client) Plan(ctx context.Context, req server.PlanRequest) (*scratchmem.PlanDoc, error) {
	body, err := c.PlanRaw(ctx, req)
	if err != nil {
		return nil, err
	}
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return nil, fmt.Errorf("client: invalid plan document: %w", err)
	}
	return &doc, nil
}

// PlanRaw is Plan returning the server's response verbatim: the body is the
// canonical PlanDoc rendering, byte-identical to scratchmem.PlanDoc.Encode,
// so tools can pipe it through unchanged.
func (c *Client) PlanRaw(ctx context.Context, req server.PlanRequest) ([]byte, error) {
	return c.do(ctx, http.MethodPost, "/v1/plan", req)
}

// Simulate times a plan (or, with req.Baseline set, the SCALE-Sim-style
// baseline; decode the raw bytes yourself for that shape).
func (c *Client) Simulate(ctx context.Context, req server.SimulateRequest) (*server.SimulateResponse, error) {
	body, err := c.do(ctx, http.MethodPost, "/v1/simulate", req)
	if err != nil {
		return nil, err
	}
	var res server.SimulateResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("client: invalid simulate response: %w", err)
	}
	return &res, nil
}

// Models lists the networks the server plans for.
func (c *Client) Models(ctx context.Context) ([]server.ModelInfo, error) {
	body, err := c.do(ctx, http.MethodGet, "/v1/models", nil)
	if err != nil {
		return nil, err
	}
	var infos []server.ModelInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		return nil, fmt.Errorf("client: invalid models response: %w", err)
	}
	return infos, nil
}

// do runs the retry loop against the client's own base URL.
func (c *Client) do(ctx context.Context, method, path string, payload any) ([]byte, error) {
	return c.doAt(ctx, c.BaseURL, method, path, payload)
}

// doAt runs the retry loop around once: classify, back off (full jitter with
// the server's Retry-After as a floor), respect the deadline budget. The
// base URL is explicit so the same client (and its retry policy, jitter
// source, and test seams) can address any member of a fleet — the
// cluster.Transport adapter depends on this.
func (c *Client) doAt(ctx context.Context, baseURL, method, path string, payload any) ([]byte, error) {
	return c.doChecked(ctx, baseURL, method, path, payload, nil)
}

// doChecked is doAt with a per-attempt response check: a 200 body that
// fails check counts as that attempt's failure and goes through the same
// classify/back-off loop as a wire error. Snapshot uses it to retry
// truncated streams.
func (c *Client) doChecked(ctx context.Context, baseURL, method, path string, payload any, check func(body []byte, hdr http.Header) error) ([]byte, error) {
	var body []byte
	if payload != nil {
		var err error
		if body, err = json.Marshal(payload); err != nil {
			return nil, fmt.Errorf("client: encoding request: %w", err)
		}
	}
	retries := c.MaxRetries
	switch {
	case retries == 0:
		retries = DefaultMaxRetries
	case retries < 0:
		retries = 0
	}
	for attempt := 0; ; attempt++ {
		res, hdr, err := c.once(ctx, baseURL, method, path, body)
		if err == nil && check != nil {
			if cerr := check(res, hdr); cerr != nil {
				res, err = nil, cerr
			}
		}
		if err == nil || attempt >= retries || !Retryable(err) {
			return res, err
		}
		d := c.backoff(attempt, err)
		if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= d {
			// The budget cannot cover the sleep, let alone another attempt:
			// surface the last real failure instead of a bare deadline error.
			return nil, fmt.Errorf("client: retry budget exhausted after %d attempts: %w", attempt+1, err)
		}
		if serr := c.sleepCtx(ctx, d); serr != nil {
			return nil, fmt.Errorf("client: canceled while backing off: %w", err)
		}
	}
}

// once performs a single HTTP exchange, returning the response headers
// alongside the body so callers can verify server-stamped invariants (the
// snapshot entry count).
func (c *Client) once(ctx context.Context, baseURL, method, path string, body []byte) ([]byte, http.Header, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, baseURL+path, rd)
	if err != nil {
		return nil, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace context so a fleet member receiving this
	// call parents its spans under the originating request — every transport
	// adapter (peer fill, lookup, replicate, invalidate, snapshot, status)
	// funnels through here, so all cross-node calls carry the header.
	if tc := obs.TraceContextFrom(ctx); tc.Valid() {
		req.Header.Set(obs.TraceparentHeader, tc.String())
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		// Report context expiry as itself, not as a retryable socket error.
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return b, resp.Header, nil
	}
	msg := strings.TrimSpace(string(b))
	var envelope struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &envelope) == nil && envelope.Error != "" {
		msg = envelope.Error
	}
	return nil, resp.Header, &APIError{
		Status:     resp.StatusCode,
		Message:    msg,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
}

// backoff picks the sleep before retry number attempt+1: full jitter over
// an exponentially growing cap (AWS architecture-blog style), floored by
// the server's Retry-After when it gave one.
func (c *Client) backoff(attempt int, err error) time.Duration {
	base, max := c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = DefaultBaseDelay
	}
	if max <= 0 {
		max = DefaultMaxDelay
	}
	ceil := base << min(attempt, 20)
	if ceil > max || ceil <= 0 {
		ceil = max
	}
	d := time.Duration(c.intn(int64(ceil) + 1))
	var ae *APIError
	if errors.As(err, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

// intn draws from the client's jitter source (seedable in tests).
func (c *Client) intn(n int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c.rng.Int63n(n)
}

// sleepCtx waits d or until ctx expires.
func (c *Client) sleepCtx(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// parseRetryAfter reads the delay-seconds form of the header (the only
// form smm-serve emits); anything else means no hint.
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}
