package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scratchmem/internal/cluster"
)

// TestSnapshotHonorsRetryAfter: a 503 with Retry-After from the snapshot
// endpoint (shed queue, injected cluster.snapshot fault) must floor the
// backoff at the server's hint, not the client's jittered base.
func TestSnapshotHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error": "shed"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-SMM-Snapshot-Entries", "1")
		io.WriteString(w, `{"key": "k"}`+"\n")
	}))
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts, &slept)
	body, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `"k"`) {
		t.Fatalf("snapshot body = %q", body)
	}
	if len(slept) != 1 {
		t.Fatalf("%d backoff sleeps, want 1", len(slept))
	}
	if slept[0] < 3*time.Second {
		t.Fatalf("backed off %v, want >= the server's 3s Retry-After", slept[0])
	}
}

// TestSnapshotRetriesTruncatedStream: a body shorter than the advertised
// record count is a failed attempt — retried like a wire error, and the
// retry fetches the full stream.
func TestSnapshotRetriesTruncatedStream(t *testing.T) {
	var calls atomic.Int64
	full := `{"key": "a"}` + "\n" + `{"key": "b"}` + "\n"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-SMM-Snapshot-Entries", "2")
		if calls.Add(1) == 1 {
			io.WriteString(w, `{"key": "a"}`+"\n") // dropped mid-stream
			return
		}
		io.WriteString(w, full)
	}))
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts, &slept)
	body, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != full {
		t.Fatalf("snapshot body = %q, want the complete stream", body)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d attempts, want 2", calls.Load())
	}
}

// TestSnapshotPartialStreamErrorSurface: when every attempt truncates, the
// caller gets the typed *PartialStreamError with counts, unwrapping to the
// historical io.ErrUnexpectedEOF sentinel.
func TestSnapshotPartialStreamErrorSurface(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-SMM-Snapshot-Entries", "3")
		io.WriteString(w, `{"key": "a"}`+"\n")
	}))
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts, &slept)
	c.MaxRetries = 1
	_, err := c.Snapshot(context.Background())
	var pse *PartialStreamError
	if !errors.As(err, &pse) {
		t.Fatalf("err = %v, want *PartialStreamError", err)
	}
	if pse.Got != 1 || pse.Want != 3 {
		t.Fatalf("partial stream counts = %d/%d, want 1/3", pse.Got, pse.Want)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatal("PartialStreamError does not unwrap to io.ErrUnexpectedEOF")
	}
	if !Retryable(pse) {
		t.Fatal("a truncated stream must be retryable")
	}
	if len(slept) != 1 {
		t.Fatalf("%d backoff sleeps before giving up, want 1 (MaxRetries=1)", len(slept))
	}
}

// TestSnapshotWithoutEntriesHeaderIsTrusted: servers predating the header
// (or proxies that strip it) make no completeness claim — nothing to verify.
func TestSnapshotWithoutEntriesHeaderIsTrusted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"key": "a"}`+"\n")
	}))
	defer ts.Close()
	var slept []time.Duration
	if _, err := testClient(ts, &slept).Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 0 {
		t.Fatal("headerless snapshot was retried")
	}
}

// TestLookupTransportMapsMissToErrNoReplica: the successor-lookup adapter
// must let the Peer backend distinguish "no replica here" (404 →
// ErrNoReplica, fall through to local compute) from "member broken".
func TestLookupTransportMapsMissToErrNoReplica(t *testing.T) {
	var path atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path.Store(r.URL.String())
		http.Error(w, `{"error": "no cached plan"}`, http.StatusNotFound)
	}))
	defer ts.Close()

	var slept []time.Duration
	lookup := testClient(ts, &slept).LookupTransport()
	_, err := lookup(context.Background(), ts.URL, map[string]any{"model": "TinyCNN"})
	if !errors.Is(err, cluster.ErrNoReplica) {
		t.Fatalf("err = %v, want cluster.ErrNoReplica", err)
	}
	if got := path.Load().(string); got != "/v1/peer/fill?cached=only" {
		t.Fatalf("lookup hit %s, want the cached-only fill", got)
	}
	if len(slept) != 0 {
		t.Fatal("a 404 miss was retried; it is a definitive answer")
	}
}

// TestProbeTransportDoesNotRetry: the probe adapter must report the first
// failure — the health tracker owns retry policy (consecutive failures over
// probe rounds), and an inner retry loop would mask the latency it measures.
func TestProbeTransportDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	var slept []time.Duration
	probe := testClient(ts, &slept).ProbeTransport()
	if err := probe(context.Background(), ts.URL); err == nil {
		t.Fatal("probe of a 503 member reported healthy")
	}
	if calls.Load() != 1 || len(slept) != 0 {
		t.Fatalf("probe made %d attempts with %d sleeps, want exactly one attempt", calls.Load(), len(slept))
	}
}

// TestInvalidateTransportMarksFanout: fan-out deliveries must carry
// fanout=no so receiving members apply locally instead of forwarding — the
// loop-prevention contract.
func TestInvalidateTransportMarksFanout(t *testing.T) {
	var gotMethod, gotURL atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMethod.Store(r.Method)
		gotURL.Store(r.URL.String())
		io.WriteString(w, `{}`)
	}))
	defer ts.Close()

	var slept []time.Duration
	inv := testClient(ts, &slept).InvalidateTransport()
	if err := inv(context.Background(), ts.URL, "abc/123"); err != nil {
		t.Fatal(err)
	}
	if gotMethod.Load() != http.MethodDelete || gotURL.Load() != "/v1/cache/abc%2F123?fanout=no" {
		t.Fatalf("key delivery = %v %v", gotMethod.Load(), gotURL.Load())
	}
	if err := inv(context.Background(), ts.URL, ""); err != nil {
		t.Fatal(err)
	}
	if gotMethod.Load() != http.MethodPost || gotURL.Load() != "/v1/cache/purge?fanout=no" {
		t.Fatalf("purge delivery = %v %v", gotMethod.Load(), gotURL.Load())
	}
}
