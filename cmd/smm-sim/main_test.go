package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunTinyCNN(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "estimator validated") {
		t.Errorf("engine did not validate the estimator:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("mismatch reported:\n%s", out)
	}
	for _, l := range []string{"conv1", "dw1", "pw1", "fc2"} {
		if !strings.Contains(out, l) {
			t.Errorf("missing layer %s", l)
		}
	}
}

func TestRunWithTraceAndDRAM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-trace", path, "-dram"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "banked DRAM replay") {
		t.Error("missing DRAM replay line")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "layer,step,kind,elems") {
		t.Errorf("trace CSV header wrong: %q", string(data[:40]))
	}
	if !strings.Contains(string(data), "load_ifmap") {
		t.Error("trace has no ifmap loads")
	}
}

func TestRunLatencyObjective(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "64", "-objective", "latency"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "objective latency") {
		t.Error("objective not reflected")
	}
}

// TestRunPerfettoTrace: -trace-out writes a valid Chrome trace-event JSON
// document whose per-kind duration sums equal the CSV trace totals at the
// paper's default rates (16 B/cycle DMA, 256 MACs/cycle — exact dyadic
// floats at 8-bit width).
func TestRunPerfettoTrace(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	jsonPath := filepath.Join(dir, "trace.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-trace", csvPath, "-trace-out", jsonPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wrote Perfetto timeline") {
		t.Errorf("missing Perfetto confirmation line:\n%s", sb.String())
	}

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace-out wrote invalid JSON: %v", err)
	}
	durs := map[string]float64{}
	threads := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			threads[ev.Name] = true
		case "X":
			if ev.PID != 1 || ev.TS < 0 || ev.Dur < 0 || (ev.TID != 1 && ev.TID != 2) {
				t.Errorf("bad complete event: %+v", ev)
			}
			durs[ev.Name] += ev.Dur
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if !threads["thread_name"] || !threads["process_name"] {
		t.Error("missing track metadata events")
	}

	// Per-kind element totals from the CSV trace of the same run.
	totals := map[string]int64{}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(csvData)), "\n")[1:] {
		f := strings.Split(line, ",")
		if len(f) != 4 {
			t.Fatalf("bad CSV line %q", line)
		}
		elems, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		totals[f[2]] += elems
	}
	for _, kind := range []string{"load_ifmap", "load_filter", "store_ofmap"} {
		if want := float64(totals[kind]) / 16; durs[kind] != want {
			t.Errorf("%s duration sum = %v cycles, want %v", kind, durs[kind], want)
		}
	}
	if want := float64(totals["compute"]) / 256; durs["compute"] != want {
		t.Errorf("compute duration sum = %v cycles, want %v", durs["compute"], want)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "nope"}, &sb); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-trace", "/nonexistent-dir/x.csv", "-model", "TinyCNN", "-glb", "32"}, &sb); err == nil {
		t.Error("unwritable trace path accepted")
	}
}
