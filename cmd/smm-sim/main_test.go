package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTinyCNN(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "estimator validated") {
		t.Errorf("engine did not validate the estimator:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("mismatch reported:\n%s", out)
	}
	for _, l := range []string{"conv1", "dw1", "pw1", "fc2"} {
		if !strings.Contains(out, l) {
			t.Errorf("missing layer %s", l)
		}
	}
}

func TestRunWithTraceAndDRAM(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-trace", path, "-dram"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "banked DRAM replay") {
		t.Error("missing DRAM replay line")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "layer,step,kind,elems") {
		t.Errorf("trace CSV header wrong: %q", string(data[:40]))
	}
	if !strings.Contains(string(data), "load_ifmap") {
		t.Error("trace has no ifmap loads")
	}
}

func TestRunLatencyObjective(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "64", "-objective", "latency"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "objective latency") {
		t.Error("objective not reflected")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "nope"}, &sb); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-trace", "/nonexistent-dir/x.csv", "-model", "TinyCNN", "-glb", "32"}, &sb); err == nil {
		t.Error("unwritable trace path accepted")
	}
}
