// Command smm-sim executes a planned model on the functional engine: every
// layer's tile schedule moves data through a capacity-checked scratchpad
// and performs the real arithmetic, then the measured traffic is checked
// against the plan's analytical estimates. Use small models (the default
// TinyCNN) unless you are patient — the engine computes every MAC.
//
// Usage:
//
//	smm-sim -model TinyCNN -glb 64 -objective latency
//	smm-sim -model TinyCNN -glb 32 -trace dma.csv -dram
//	smm-sim -model TinyCNN -glb 32 -trace-out trace.json   (open in Perfetto)
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	scratchmem "scratchmem"
	"scratchmem/internal/cli"
	"scratchmem/internal/core"
	"scratchmem/internal/dram"
	"scratchmem/internal/engine"
	"scratchmem/internal/layer"
	"scratchmem/internal/obs"
	"scratchmem/internal/report"
	"scratchmem/internal/tensor"
	"scratchmem/internal/trace"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	cli.Exit("smm-sim", err)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		modelFlag = fs.String("model", "TinyCNN", "built-in model name or path to a .json/.csv model description")
		glbKB     = fs.Int("glb", 64, "global buffer size in kB")
		objective = fs.String("objective", "accesses", "optimisation objective: accesses or latency")
		seed      = fs.Int64("seed", 1, "seed for the synthetic activations and weights")
		traceOut  = fs.String("trace", "", "write a CSV DMA/compute trace to this path")
		perfetto  = fs.String("trace-out", "", "write a Chrome trace-event JSON timeline (Perfetto-loadable) to this path")
		useDRAM   = fs.Bool("dram", false, "also replay the DMA trace through the banked DRAM model")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	net, err := loadModel(*modelFlag)
	if err != nil {
		return err
	}
	obj := core.MinAccesses
	if *objective == "latency" {
		obj = core.MinLatency
	}
	plan, err := scratchmem.PlanModelCtx(ctx, net, scratchmem.PlanOptions{GLBKiloBytes: *glbKB, Objective: obj}, nil)
	if err != nil {
		return err
	}

	var log *trace.Log
	if *traceOut != "" || *perfetto != "" || *useDRAM {
		log = &trace.Log{}
	}
	r := rand.New(rand.NewSource(*seed))
	t := report.NewTable(
		fmt.Sprintf("%s executed on the functional engine (GLB %d kB, objective %s)", net.Name, *glbKB, obj),
		"layer", "policy", "est accesses", "run accesses", "match", "peak/est mem", "serial cyc", "pipelined cyc")
	var estTotal, runTotal int64
	for i := range plan.Layers {
		lp := &plan.Layers[i]
		l := &lp.Layer
		in := tensor.New(l.IH, l.IW, l.CI).Random(r)
		var w *tensor.Filters
		if l.Kind == layer.DepthwiseConv {
			w = tensor.NewFilters(l.FH, l.FW, 1, l.CI).Random(r)
		} else {
			w = tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)
		}
		res, err := engine.RunTracedCtx(ctx, l, &lp.Est, plan.Cfg, in, w, log)
		if err != nil {
			return fmt.Errorf("layer %s: %w", l.Name, err)
		}
		// Verify numerics against the reference kernels.
		var want *tensor.Tensor
		if l.Kind == layer.DepthwiseConv {
			want = tensor.DepthwiseConv2D(in, w, l.S, l.P)
		} else {
			want = tensor.Conv2D(in, w, l.S, l.P)
		}
		match := "OK"
		if !res.Output.Equal(want) {
			match = "NUMERIC MISMATCH"
		}
		if res.AccessElems() != lp.Est.AccessElems {
			match = "TRAFFIC MISMATCH"
		}
		estTotal += lp.Est.AccessElems
		runTotal += res.AccessElems()
		label := lp.Est.Policy.Short()
		if lp.Est.Opts.Prefetch {
			label += "+p"
		}
		t.Row(l.Name, label, lp.Est.AccessElems, res.AccessElems(), match,
			fmt.Sprintf("%d/%d", res.PeakElems, lp.Est.MemoryElems),
			engine.SerialCycles(res.Phases, plan.Cfg),
			engine.PipelinedCycles(res.Phases, plan.Cfg))
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntotal: estimated %d elems, executed %d elems (%s)\n",
		estTotal, runTotal, verdict(estTotal == runTotal))
	if *useDRAM {
		cycles, ch, err := dram.Replay(log, plan.Cfg.DataWidthBits, dram.Default())
		if err != nil {
			return err
		}
		hits, misses, _ := ch.Stats()
		ideal := (plan.AccessBytes() + int64(plan.Cfg.DRAMBytesPerCycle) - 1) / int64(plan.Cfg.DRAMBytesPerCycle)
		fmt.Fprintf(out, "banked DRAM replay: %d cycles (ideal-BW %d), %d row hits, %d misses\n",
			cycles, ideal, hits, misses)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := log.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d trace events to %s\n", log.Len(), *traceOut)
	}
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, log, plan.Cfg); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote Perfetto timeline (%d events) to %s\n", log.Len(), *perfetto)
	}
	return nil
}

func verdict(ok bool) string {
	if ok {
		return "estimator validated"
	}
	return "MISMATCH"
}

func loadModel(s string) (*scratchmem.Network, error) {
	if _, err := os.Stat(s); err == nil {
		return scratchmem.LoadModel(s)
	}
	return scratchmem.BuiltinModel(s)
}
