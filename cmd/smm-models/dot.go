package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"scratchmem/internal/model"
)

// loadGraphArg resolves the -graph model argument: an existing file loads as
// a SCALE-Sim topology CSV or graph JSON by extension, anything else is a
// builtin graph name.
func loadGraphArg(arg string) (*model.Graph, error) {
	if _, err := os.Stat(arg); err != nil {
		return model.BuiltinGraph(arg)
	}
	f, err := os.Open(arg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(arg), ".csv") {
		name := strings.TrimSuffix(filepath.Base(arg), filepath.Ext(arg))
		return model.ReadTopologyGraphCSV(name, f)
	}
	return model.ReadGraphJSON(f)
}

// writeDot renders the tensor-lifetime graph as deterministic Graphviz dot:
// layers are boxes, external (DRAM-streamed) tensors are ellipses, tensor
// edges are labelled with the producing ofmap extent HxWxC, and residual
// shortcut edges are dashed. Output depends only on the graph, so tests can
// pin it.
func writeDot(w io.Writer, g *model.Graph) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box];\n", g.Name); err != nil {
		return err
	}
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		l := &nd.Layer
		fmt.Fprintf(w, "  %q [label=\"%s\\n%s %dx%dx%d\"];\n",
			l.Name, l.Name, l.Kind, l.OH(), l.OW(), l.CO())
	}
	// Externals are declared in first-read order, once each.
	seen := map[string]bool{}
	for i := range g.Nodes {
		for _, in := range g.Nodes[i].Inputs {
			if model.IsExternalTensor(in) && !seen[in] {
				seen[in] = true
				fmt.Fprintf(w, "  %q [shape=ellipse];\n", in)
			}
		}
	}
	prod := map[string]*model.GraphNode{}
	for i := range g.Nodes {
		prod[g.Nodes[i].Layer.Name] = &g.Nodes[i]
	}
	for i := range g.Nodes {
		nd := &g.Nodes[i]
		for _, in := range nd.Inputs {
			label := fmt.Sprintf("%dx%dx%d", nd.Layer.IH, nd.Layer.IW, nd.Layer.CI)
			if p, ok := prod[in]; ok {
				label = fmt.Sprintf("%dx%dx%d", p.Layer.OH(), p.Layer.OW(), p.Layer.CO())
			}
			fmt.Fprintf(w, "  %q -> %q [label=%q];\n", in, nd.Layer.Name, label)
		}
		for _, r := range nd.Residual {
			fmt.Fprintf(w, "  %q -> %q [style=dashed];\n", r, nd.Layer.Name)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
