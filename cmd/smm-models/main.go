// Command smm-models lists the built-in networks with their footprints, or
// prints the per-layer table of one model — the quickest way to see what
// the planner will be working with.
//
// Usage:
//
//	smm-models                 # inventory of all built-ins
//	smm-models -model VGG16    # per-layer table of one model
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scratchmem/internal/cli"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/report"
)

func main() {
	// Nothing here outlives a keystroke, so no signal context: the shared
	// exit protocol is all this tool needs.
	cli.Exit("smm-models", run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-models", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		modelFlag = fs.String("model", "", "show the per-layer table of one model (empty = inventory)")
		export    = fs.String("export", "", "write the selected model as JSON or SCALE-Sim topology CSV (by extension)")
		graphFlag = fs.Bool("graph", false, "emit the model's tensor graph as Graphviz dot (accepts a builtin name or a topology CSV/JSON path in -model)")
		logFlags  = cli.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	if *graphFlag {
		if *modelFlag == "" {
			return fmt.Errorf("-graph needs -model (a builtin name or a topology file)")
		}
		g, err := loadGraphArg(*modelFlag)
		if err != nil {
			return err
		}
		logger.Debug("graph loaded", "model", g.Name, "nodes", len(g.Nodes), "chain", g.IsChain())
		return writeDot(out, g)
	}

	if *modelFlag == "" {
		t := report.NewTable("Built-in models",
			"Network", "Layers", "Types", "Params (M)", "MACs (G)", "Min traffic (MB)")
		names := append(model.BuiltinNames(), "AlexNet", "VGG16", "TinyCNN")
		for _, name := range names {
			n, err := model.Builtin(name)
			if err != nil {
				return err
			}
			types := ""
			for i, k := range n.Types() {
				if i > 0 {
					types += ","
				}
				types += k.String()
			}
			t.Row(n.Name, len(n.Layers), types,
				float64(n.Params())/1e6, float64(n.MACs())/1e9,
				float64(n.MinTransfers(false))/(1<<20))
		}
		return t.Render(out)
	}

	n, err := model.Builtin(*modelFlag)
	if err != nil {
		return err
	}
	logger.Debug("model loaded", "model", n.Name, "layers", len(n.Layers))
	t := report.NewTable(fmt.Sprintf("%s: %d layers", n.Name, len(n.Layers)),
		"L", "name", "type", "ifmap", "filter", "out", "params (k)", "MACs (M)")
	for i := range n.Layers {
		l := &n.Layers[i]
		t.Row(i+1, l.Name, l.Kind.String(),
			fmt.Sprintf("%dx%dx%d", l.IH, l.IW, l.CI),
			fmt.Sprintf("%dx%dx%d", l.FH, l.FW, l.F),
			fmt.Sprintf("%dx%dx%d", l.OH(), l.OW(), l.CO()),
			float64(l.FilterElems())/1e3,
			float64(l.MACs())/1e6)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntotal: %.2fM params, %.2fG MACs, ifmap max %s\n",
		float64(n.Params())/1e6, float64(n.MACs())/1e9, biggestIfmap(n))
	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		defer f.Close()
		if len(*export) > 4 && (*export)[len(*export)-4:] == ".csv" {
			err = n.WriteTopologyCSV(f)
		} else {
			err = n.WriteJSON(f)
		}
		if err != nil {
			return err
		}
		logger.Debug("model exported", "model", n.Name, "path", *export)
		fmt.Fprintf(out, "wrote %s\n", *export)
	}
	return nil
}

func biggestIfmap(n *model.Network) string {
	var best *layer.Layer
	var bestElems int64
	for i := range n.Layers {
		if e := n.Layers[i].IfmapElems(false); e > bestElems {
			best, bestElems = &n.Layers[i], e
		}
	}
	return fmt.Sprintf("%s (%.1f kB)", best.Name, float64(bestElems)/1024)
}
