package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunInventory(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, m := range []string{"ResNet18", "EfficientNetB0", "VGG16", "AlexNet", "TinyCNN"} {
		if !strings.Contains(out, m) {
			t.Errorf("inventory missing %s", m)
		}
	}
}

func TestRunSingleModel(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "VGG16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"conv1_1", "fc1", "138.", "total:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunExport(t *testing.T) {
	dir := t.TempDir()
	for _, ext := range []string{"json", "csv"} {
		path := filepath.Join(dir, "m."+ext)
		var sb strings.Builder
		if err := run([]string{"-model", "TinyCNN", "-export", path}, &sb); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil || len(data) == 0 {
			t.Errorf("%s: export failed (%v)", ext, err)
		}
	}
}

func TestRunGraphDot(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "GoogLeNet", "-graph"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"GoogLeNet\"",
		"\"@in0\" [shape=ellipse];",
		"\"i3a_1x1\"",
		"[label=\"28x28x192\"];", // the inception 3a input tensor fan-out
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := run([]string{"-model", "GoogLeNet", "-graph"}, &sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("dot output is not deterministic")
	}

	// A residual-carrying builtin renders dashed shortcut edges.
	sb.Reset()
	if err := run([]string{"-model", "ResNet18", "-graph"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "[style=dashed];") {
		t.Error("ResNet18 dot has no dashed residual edges")
	}

	// A topology CSV path loads through the graph reader.
	sb.Reset()
	if err := run([]string{"-model", filepath.Join("..", "..", "topologies", "MobileNetV2.csv"), "-graph"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph \"MobileNetV2\"") {
		t.Errorf("CSV graph output wrong:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-model", "nope"}, &sb); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run([]string{"-model", "TinyCNN", "-export", "/proc/nope/x.json"}, &sb); err == nil {
		t.Error("unwritable export accepted")
	}
}
