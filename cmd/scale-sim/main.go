// Command scale-sim runs the SCALE-Sim-style baseline: a 16x16 output-
// stationary systolic array with separate, double-buffered ifmap/filter
// scratchpads. It reports per-layer zero-stall cycles and DRAM traffic for
// one of the paper's fixed buffer splits, and can cross-check the
// analytical model against the element-exact trace simulator on small
// layers.
//
// Usage:
//
//	scale-sim -model ResNet18 -glb 64 -split 25
//	scale-sim -model topology.csv -glb 256 -split 75 -trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	scratchmem "scratchmem"
	"scratchmem/internal/cli"
	"scratchmem/internal/layer"
	"scratchmem/internal/report"
	"scratchmem/internal/scalesim"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	cli.Exit("scale-sim", err)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scale-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		modelFlag = fs.String("model", "ResNet18", "built-in model name or path to a .json/.csv model description")
		glbKB     = fs.Int("glb", 64, "total on-chip budget in kB (4 kB goes to the ofmap buffer)")
		split     = fs.Int("split", 50, "percent of the remaining budget assigned to the ifmap buffer (25, 50 or 75)")
		width     = fs.Int("width", 8, "data width in bits")
		traceFlag = fs.Bool("trace", false, "cross-check small dense layers with the element-exact trace simulator")
		flow      = fs.String("dataflow", "os", "dataflow: os, ws or is")
		logFlags  = cli.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	net, err := loadModel(*modelFlag)
	if err != nil {
		return err
	}
	cfg := scalesim.Split(fmt.Sprintf("sa_%d_%d", *split, 100-*split), *glbKB, *split, *width)
	df, err := scalesim.ParseDataflow(*flow)
	if err != nil {
		return err
	}
	cfg.Flow = df
	res, err := scalesim.SimulateNetworkCtx(ctx, net, cfg, cli.LogProgress(logger))
	if err != nil {
		return err
	}

	t := report.NewTable(
		fmt.Sprintf("%s on baseline %s (GLB %d kB, %d-bit, %s dataflow)", net.Name, cfg.Name, *glbKB, *width, cfg.Flow),
		"layer", "cycles", "ifmap", "filter", "ofmap", "total", "util %")
	for _, lr := range res.Layers {
		t.Row(lr.Layer, lr.Cycles, lr.DRAMIfmap, lr.DRAMFilter, lr.DRAMOfmap,
			lr.DRAMTotal(), 100*lr.Utilization)
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "\ntotals: %.3f Mcycles (zero-stall), %.2f MB DRAM traffic\n",
		float64(res.Cycles())/1e6, float64(res.DRAMBytes())/(1024*1024))

	if *traceFlag && cfg.Flow != scalesim.OutputStationary {
		return fmt.Errorf("trace cross-check only supports the os dataflow")
	}
	if *traceFlag {
		fmt.Fprintln(out, "\ntrace cross-check (dense layers with <= 4k output pixels):")
		for i := range net.Layers {
			if err := ctx.Err(); err != nil {
				return err
			}
			l := &net.Layers[i]
			if l.Kind == layer.DepthwiseConv || int64(l.OH())*int64(l.OW()) > 1<<12 {
				continue
			}
			tr, err := scalesim.Trace(l, cfg)
			if err != nil {
				return err
			}
			a := res.Layers[i]
			fmt.Fprintf(out, "  %-16s analytic %10d elems, trace %10d elems (%.2fx)\n",
				l.Name, a.DRAMTotal(), tr.DRAMTotal(),
				float64(a.DRAMTotal())/float64(tr.DRAMTotal()))
		}
	}
	return nil
}

func loadModel(s string) (*scratchmem.Network, error) {
	if _, err := os.Stat(s); err == nil {
		return scratchmem.LoadModel(s)
	}
	return scratchmem.BuiltinModel(s)
}
