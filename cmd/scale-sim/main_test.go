package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunBaseline(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "MobileNet", "-glb", "64", "-split", "25"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sa_25_75", "conv1", "dw1", "totals:", "Mcycles"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWithTraceCrossCheck(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "64", "-trace"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trace cross-check") {
		t.Error("missing trace section")
	}
	if !strings.Contains(sb.String(), "analytic") {
		t.Error("no cross-check rows emitted")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "nope"}, &sb); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-glb", "notanumber"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunDataflows(t *testing.T) {
	for _, flow := range []string{"ws", "is"} {
		var sb strings.Builder
		if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "64", "-dataflow", flow}, &sb); err != nil {
			t.Fatalf("%s: %v", flow, err)
		}
		if !strings.Contains(sb.String(), flow+" dataflow") {
			t.Errorf("%s: dataflow not reflected in header", flow)
		}
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-dataflow", "rs"}, &sb); err == nil {
		t.Error("unknown dataflow accepted")
	}
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-dataflow", "ws", "-trace"}, &sb); err == nil {
		t.Error("trace with ws dataflow accepted")
	}
}
