// Command smm-experiments regenerates the paper's tables and figures (and
// this repository's extensions).
//
// Usage:
//
//	smm-experiments                   # run everything, print ASCII tables
//	smm-experiments -exp fig5,fig8    # a subset
//	smm-experiments -out results      # additionally write CSVs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"scratchmem/internal/experiments"
	"scratchmem/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smm-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smm-experiments", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		exp     = fs.String("exp", "all", "comma-separated experiments: table2,table3,table4,fig3,fig5,fig6,fig7,fig8,fig9,fig10,fig11,headline,energy,batch,ablation,tenancy or all")
		out     = fs.String("out", "", "directory for CSV/markdown output (optional)")
		format  = fs.String("format", "csv", "on-disk format for -out: csv or md")
		workers = fs.Int("workers", 0, "fan-out goroutines (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *format != "csv" && *format != "md" {
		return fmt.Errorf("unknown format %q (want csv or md)", *format)
	}
	s := experiments.DefaultSetup()
	s.Workers = *workers

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	shouldRun := func(name string) bool { return all || want[name] }

	var emitErr error
	emit := func(name string, t *report.Table) {
		if emitErr != nil {
			return
		}
		if err := t.Render(stdout); err != nil {
			emitErr = err
			return
		}
		fmt.Fprintln(stdout)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				emitErr = err
				return
			}
			f, err := os.Create(filepath.Join(*out, name+"."+*format))
			if err != nil {
				emitErr = err
				return
			}
			var werr error
			if *format == "md" {
				werr = t.RenderMarkdown(f)
			} else {
				werr = t.WriteCSV(f)
			}
			if werr != nil {
				emitErr = werr
				f.Close()
				return
			}
			emitErr = f.Close()
		}
	}

	var f5 []experiments.Fig5Cell
	var f8 []experiments.Fig8Cell

	if shouldRun("table2") {
		emit("table2", experiments.Table2())
	}
	if shouldRun("table3") {
		_, t := experiments.Table3()
		emit("table3", t)
	}
	if shouldRun("table4") {
		emit("table4", experiments.Table4(64))
	}
	if shouldRun("fig3") {
		emit("fig3", experiments.Fig3())
	}
	if shouldRun("fig5") || shouldRun("headline") {
		var t *report.Table
		f5, t = experiments.Fig5(s)
		if shouldRun("fig5") {
			emit("fig5", t)
		}
	}
	if shouldRun("fig6") {
		emit("fig6", experiments.Fig6(64))
	}
	if shouldRun("fig7") {
		_, t := experiments.Fig7(s)
		emit("fig7", t)
	}
	if shouldRun("fig8") || shouldRun("headline") {
		var t *report.Table
		f8, t = experiments.Fig8(s)
		if shouldRun("fig8") {
			emit("fig8", t)
		}
	}
	if shouldRun("fig9") {
		_, t := experiments.Fig9(s, 64)
		emit("fig9", t)
	}
	if shouldRun("fig10") {
		_, t := experiments.Fig10(s, "MobileNet")
		emit("fig10", t)
	}
	if shouldRun("fig11") {
		_, t, g := experiments.Fig11(s, "MnasNet")
		emit("fig11", t)
		emit("fig11_geomean", g)
	}
	if shouldRun("energy") {
		_, t := experiments.ExtEnergy(s)
		emit("energy", t)
	}
	if shouldRun("batch") {
		_, t := experiments.ExtBatch(s, "GoogLeNet", 256)
		emit("batch", t)
	}
	if shouldRun("ablation") {
		_, t := experiments.ExtInterLayerAblation(s)
		emit("ablation", t)
	}
	if shouldRun("dataflow") {
		_, t := experiments.ExtDataflow(s, 64)
		emit("dataflow", t)
	}
	if shouldRun("classics") {
		_, t := experiments.ExtClassics(s)
		emit("classics", t)
	}
	if shouldRun("sizing") {
		_, t := experiments.ExtSizing(s)
		emit("sizing", t)
	}
	if shouldRun("dse") {
		_, t := experiments.ExtDSE(s, 64)
		emit("dse", t)
	}
	if shouldRun("sensitivity") {
		_, t := experiments.ExtSensitivity(s, "MobileNetV2", 64)
		emit("sensitivity", t)
	}
	if shouldRun("tenancy") {
		for _, kb := range []int{128, 256, 512} {
			_, t := experiments.ExtTenancy(s, "ResNet18", "MobileNet", kb)
			emit(fmt.Sprintf("tenancy_%dkB", kb), t)
		}
	}
	if shouldRun("headline") || all {
		if f5 == nil {
			f5, _ = experiments.Fig5(s)
		}
		if f8 == nil {
			f8, _ = experiments.Fig8(s)
		}
		_, t := experiments.Headlines(f5, f8)
		emit("headline", t)
	}
	return emitErr
}
