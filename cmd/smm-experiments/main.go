// Command smm-experiments regenerates the paper's tables and figures (and
// this repository's extensions).
//
// Usage:
//
//	smm-experiments                   # run everything, print ASCII tables
//	smm-experiments -exp fig5,fig8    # a subset
//	smm-experiments -out results      # additionally write CSVs
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"scratchmem/internal/cli"
	"scratchmem/internal/experiments"
	"scratchmem/internal/progress"
	"scratchmem/internal/report"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	cli.Exit("smm-experiments", err)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smm-experiments", flag.ContinueOnError)
	fs.SetOutput(stdout)
	var (
		exp      = fs.String("exp", "all", "comma-separated experiments: table2,table3,table4,fig3,fig5,fig6,fig7,fig8,fig9,fig10,fig11,headline,energy,batch,ablation,tenancy or all")
		out      = fs.String("out", "", "directory for CSV/markdown output (optional)")
		format   = fs.String("format", "csv", "on-disk format for -out: csv or md")
		workers  = fs.Int("workers", 0, "fan-out goroutines (0 = GOMAXPROCS)")
		showAll  = fs.Bool("progress", false, "log per-cell progress to stderr")
		logFlags = cli.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	if *format != "csv" && *format != "md" {
		return fmt.Errorf("unknown format %q (want csv or md)", *format)
	}
	s := experiments.DefaultSetup()
	s.Workers = *workers

	// The drivers fan cells out across workers; slog handlers serialise
	// their writes, so the structured hook needs no extra locking. -progress
	// promotes the records to info so they show at the default level.
	var prog progress.Func
	if *showAll {
		prog = func(ev progress.Event) {
			attrs := []any{"phase", ev.Phase, "index", ev.Index + 1, "total", ev.Total, "name", ev.Name}
			if ev.Policy != "" {
				attrs = append(attrs, "policy", ev.Policy)
			}
			logger.Info("progress", attrs...)
		}
	} else {
		prog = cli.LogProgress(logger)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	shouldRun := func(name string) bool { return all || want[name] }

	var emitErr error
	emit := func(name string, t *report.Table) {
		if emitErr != nil {
			return
		}
		if err := t.Render(stdout); err != nil {
			emitErr = err
			return
		}
		fmt.Fprintln(stdout)
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				emitErr = err
				return
			}
			f, err := os.Create(filepath.Join(*out, name+"."+*format))
			if err != nil {
				emitErr = err
				return
			}
			var werr error
			if *format == "md" {
				werr = t.RenderMarkdown(f)
			} else {
				werr = t.WriteCSV(f)
			}
			if werr != nil {
				emitErr = werr
				f.Close()
				return
			}
			emitErr = f.Close()
		}
	}

	var f5 []experiments.Fig5Cell
	var f8 []experiments.Fig8Cell

	if shouldRun("table2") {
		emit("table2", experiments.Table2())
	}
	if shouldRun("table3") {
		_, t := experiments.Table3()
		emit("table3", t)
	}
	if shouldRun("table4") {
		emit("table4", experiments.Table4(64))
	}
	if shouldRun("fig3") {
		emit("fig3", experiments.Fig3())
	}
	if shouldRun("fig5") || shouldRun("headline") {
		var t *report.Table
		var err error
		f5, t, err = experiments.Fig5Ctx(ctx, s, prog)
		if err != nil {
			return err
		}
		if shouldRun("fig5") {
			emit("fig5", t)
		}
	}
	if shouldRun("fig6") {
		emit("fig6", experiments.Fig6(64))
	}
	if shouldRun("fig7") {
		_, t, err := experiments.Fig7Ctx(ctx, s, prog)
		if err != nil {
			return err
		}
		emit("fig7", t)
	}
	if shouldRun("fig8") || shouldRun("headline") {
		var t *report.Table
		var err error
		f8, t, err = experiments.Fig8Ctx(ctx, s, prog)
		if err != nil {
			return err
		}
		if shouldRun("fig8") {
			emit("fig8", t)
		}
	}
	if shouldRun("fig9") {
		_, t, err := experiments.Fig9Ctx(ctx, s, 64, prog)
		if err != nil {
			return err
		}
		emit("fig9", t)
	}
	if shouldRun("fig10") {
		_, t, err := experiments.Fig10Ctx(ctx, s, "MobileNet", prog)
		if err != nil {
			return err
		}
		emit("fig10", t)
	}
	if shouldRun("fig11") {
		_, t, g, err := experiments.Fig11Ctx(ctx, s, "MnasNet", prog)
		if err != nil {
			return err
		}
		emit("fig11", t)
		emit("fig11_geomean", g)
	}
	if shouldRun("energy") {
		_, t, err := experiments.ExtEnergyCtx(ctx, s, prog)
		if err != nil {
			return err
		}
		emit("energy", t)
	}
	if shouldRun("batch") {
		_, t, err := experiments.ExtBatchCtx(ctx, s, "GoogLeNet", 256, prog)
		if err != nil {
			return err
		}
		emit("batch", t)
	}
	if shouldRun("ablation") {
		_, t, err := experiments.ExtInterLayerAblationCtx(ctx, s, prog)
		if err != nil {
			return err
		}
		emit("ablation", t)
	}
	if shouldRun("dataflow") {
		_, t, err := experiments.ExtDataflowCtx(ctx, s, 64, prog)
		if err != nil {
			return err
		}
		emit("dataflow", t)
	}
	if shouldRun("classics") {
		_, t, err := experiments.ExtClassicsCtx(ctx, s, prog)
		if err != nil {
			return err
		}
		emit("classics", t)
	}
	if shouldRun("sizing") {
		_, t, err := experiments.ExtSizingCtx(ctx, s, prog)
		if err != nil {
			return err
		}
		emit("sizing", t)
	}
	if shouldRun("dse") {
		_, t, err := experiments.ExtDSECtx(ctx, s, 64, prog)
		if err != nil {
			return err
		}
		emit("dse", t)
	}
	if shouldRun("sensitivity") {
		_, t, err := experiments.ExtSensitivityCtx(ctx, s, "MobileNetV2", 64, prog)
		if err != nil {
			return err
		}
		emit("sensitivity", t)
	}
	if shouldRun("tenancy") {
		for _, kb := range []int{128, 256, 512} {
			_, t, err := experiments.ExtTenancyCtx(ctx, s, "ResNet18", "MobileNet", kb, prog)
			if err != nil {
				return err
			}
			emit(fmt.Sprintf("tenancy_%dkB", kb), t)
		}
	}
	if shouldRun("headline") || all {
		var err error
		if f5 == nil {
			f5, _, err = experiments.Fig5Ctx(ctx, s, prog)
			if err != nil {
				return err
			}
		}
		if f8 == nil {
			f8, _, err = experiments.Fig8Ctx(ctx, s, prog)
			if err != nil {
				return err
			}
		}
		_, t := experiments.Headlines(f5, f8)
		emit("headline", t)
	}
	return emitErr
}
