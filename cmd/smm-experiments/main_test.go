package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2,table3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Table 3") {
		t.Error("subset tables missing")
	}
	if strings.Contains(out, "Figure 5") {
		t.Error("unrequested experiment ran")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "table4,fig9", "-out", dir, "-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table4.csv", "fig9.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

func TestRunHeadlineOnly(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "headline"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Headline results") {
		t.Error("missing headline table")
	}
	if strings.Contains(out, "Figure 5: off-chip") {
		t.Error("fig5 table printed for headline-only run")
	}
}

func TestRunExtensions(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "batch"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "batching on GoogLeNet") {
		t.Error("missing batch extension table")
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
	// Unwritable output directory.
	if err := run(context.Background(), []string{"-exp", "table2", "-out", "/proc/nope/xx"}, &sb); err == nil {
		t.Error("unwritable out dir accepted")
	}
}

func TestRunMarkdownOutput(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "table2", "-out", dir, "-format", "md"}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table2.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| Network |") {
		t.Errorf("markdown table malformed: %s", data)
	}
	if err := run(context.Background(), []string{"-format", "xml"}, &sb); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestRunAll exercises the full default run once (it is what the README
// tells users to execute).
func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-workers", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Table 4", "Figure 3", "Figure 5", "Figure 6",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"Headline results",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("full run missing %q", want)
		}
	}
}
