package main

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"scratchmem/internal/faultinject"
)

// syncBuffer is a goroutine-safe writer so the test can poll run's output
// while the server goroutine writes to it.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// The startup record is a slog line like `... msg=listening addr=127.0.0.1:41231 ...`.
var listenRe = regexp.MustCompile(`msg=listening addr=([^\s]+)`)

// TestServeLifecycle boots the real binary path on an ephemeral port,
// exercises a plan round trip and the cache-hit counter, then shuts down
// via context cancellation (the signal path).
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-timeout", "30s"}, out)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	body := `{"model": "TinyCNN", "glb_kb": 32}`
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: status %d: %s", i, resp.StatusCode, b)
		}
		if h := resp.Header.Get("X-SMM-Cache"); h != want {
			t.Errorf("plan %d: X-SMM-Cache = %q, want %q", i, h, want)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "smm_cache_hits_total 1") {
		t.Errorf("metrics missing cache hit:\n%s", mb)
	}

	cancel() // the signal path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "cache_hits=1") {
		t.Errorf("shutdown log incomplete:\n%s", s)
	}
}

func TestServeBadFlags(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-addr"}, out); err == nil {
		t.Error("dangling flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, out); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestServeFaultsFlag: -faults arms the injection registry for the server's
// lifetime (every plan fails retryably here, p=1) and disarms it on exit.
func TestServeFaultsFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-faults", "seed=1;server.plan=error:1"}, out)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "FAULT INJECTION ARMED") {
		t.Error("armed server did not announce the faults")
	}

	resp, err := http.Post(base+"/v1/plan", "application/json",
		strings.NewReader(`{"model": "TinyCNN", "glb_kb": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("injected plan: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 missing Retry-After")
	}
	// The observer logs every fired fault through the server's logger.
	for !strings.Contains(out.String(), "fault injected") {
		if time.Now().After(deadline) {
			t.Fatalf("fired fault never logged; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if faultinject.Enabled() {
		t.Error("faults still armed after run returned")
	}
}

// TestServeDebugAddr: -debug-addr serves net/http/pprof on its own
// listener, announced through the structured log.
func TestServeDebugAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, out)
	}()

	debugRe := regexp.MustCompile(`debug_addr=([^\s]+)`)
	var debugBase string
	deadline := time.Now().Add(5 * time.Second)
	for debugBase == "" {
		if m := debugRe.FindStringSubmatch(out.String()); m != nil {
			debugBase = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug server never announced; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "goroutine") {
		t.Errorf("pprof index: status %d body %.80q", resp.StatusCode, b)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestServeFaultsBadSpec: a malformed spec refuses to start the server.
func TestServeFaultsBadSpec(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-faults", "nonsense"}, out); err == nil {
		t.Error("malformed fault spec accepted")
	}
}

// startRun boots run() in a goroutine and waits for its listening record.
func startRun(t *testing.T, ctx context.Context, args ...string) (base string, out *syncBuffer, done chan error) {
	t.Helper()
	out = &syncBuffer{}
	done = make(chan error, 1)
	go func() { done <- run(ctx, args, out) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], out, done
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitDone joins a startRun goroutine after its context was cancelled.
func waitDone(t *testing.T, done chan error) {
	t.Helper()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("server did not shut down")
	}
}

// getBody fetches a URL and returns its body, failing on non-200.
func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// metricValue extracts one exactly-named counter from a /metrics body.
func metricValue(t *testing.T, body, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// freeAddr reserves an ephemeral loopback port and releases it for run() to
// claim: fleet members must know each other's URLs before any of them has
// started listening.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestServeVersionFlag: -version prints build info and exits cleanly
// without starting a listener.
func TestServeVersionFlag(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-version"}, out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `"module": "scratchmem"`) || !strings.Contains(s, `"go": "go`) {
		t.Errorf("version output:\n%s", s)
	}
}

// TestServeClusterFlagValidation: fleet flags are checked before listening.
func TestServeClusterFlagValidation(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-peers", "http://a:1,http://b:1"}, out); err == nil {
		t.Error("-peers without -self accepted")
	}
	if err := run(context.Background(), []string{"-peers", "http://a:1,http://b:1", "-self", "http://c:1"}, out); err == nil {
		t.Error("-self outside -peers accepted")
	}
	if err := run(context.Background(), []string{"-self", "http://a:1"}, out); err == nil {
		t.Error("-self without -peers accepted")
	}
}

// TestServeClusterFleet boots a real two-member fleet through the binary
// path: the same plan requested on both nodes runs the planner exactly
// once fleet-wide, with the non-owner filled over POST /v1/peer/fill.
func TestServeClusterFleet(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := []string{freeAddr(t), freeAddr(t)}
	peers := "http://" + addrs[0] + ",http://" + addrs[1]
	var dones []chan error
	for _, a := range addrs {
		// Replication off: with it on, the owner can push its replica to the
		// other member before that member's own request arrives, making the
		// peer-fill count depend on timing. TestServeFleetReplication covers
		// the replication path.
		_, _, done := startRun(t, ctx,
			"-addr", a, "-peers", peers, "-self", "http://"+a, "-timeout", "30s",
			"-replicate-queue", "0")
		dones = append(dones, done)
	}

	body := `{"model": "TinyCNN", "glb_kb": 48}`
	for _, a := range addrs {
		resp, err := http.Post("http://"+a+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan on %s: status %d: %s", a, resp.StatusCode, b)
		}
	}

	var runs, fills, owners int64
	for _, a := range addrs {
		mb := getBody(t, "http://"+a+"/metrics")
		runs += metricValue(t, mb, "smm_planner_latency_seconds_count")
		fills += metricValue(t, mb, `smm_peer_fill_total{outcome="hit"}`)
		owners += metricValue(t, mb, "smm_ring_owner_self_total")
	}
	if runs != 1 {
		t.Errorf("planner ran %d times fleet-wide, want exactly 1", runs)
	}
	if fills != 1 {
		t.Errorf("%d successful peer fills, want 1 (the non-owner's)", fills)
	}
	// The owner resolves the key twice: once for its own /v1/plan and once
	// serving the other member's POST /v1/peer/fill.
	if owners != 2 {
		t.Errorf("%d owner-self lookups, want 2", owners)
	}

	cancel()
	for _, done := range dones {
		waitDone(t, done)
	}
}

// TestServeWarmFrom: a node booted with -warm-from (peer URL or snapshot
// file) serves its very first plan request as a cache hit, byte-identical
// to the source node's document.
func TestServeWarmFrom(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	baseA, _, doneA := startRun(t, ctx, "-addr", "127.0.0.1:0", "-timeout", "30s")

	body := `{"model": "TinyCNN", "glb_kb": 32}`
	resp, err := http.Post(baseA+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed plan: status %d: %s", resp.StatusCode, want)
	}

	snapFile := filepath.Join(t.TempDir(), "cache.ndjson")
	if err := os.WriteFile(snapFile, []byte(getBody(t, baseA+"/v1/cache/snapshot")), 0o644); err != nil {
		t.Fatal(err)
	}

	dones := []chan error{doneA}
	for _, tc := range []struct{ name, source string }{{"url", baseA}, {"file", snapFile}} {
		base, out, done := startRun(t, ctx, "-addr", "127.0.0.1:0", "-warm-from", tc.source)
		dones = append(dones, done)
		if s := out.String(); !strings.Contains(s, "cache warmed") || !strings.Contains(s, "added=1") {
			t.Errorf("%s: warm log missing:\n%s", tc.name, s)
		}
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if h := resp.Header.Get("X-SMM-Cache"); h != "hit" {
			t.Errorf("%s: first request X-SMM-Cache = %q, want hit", tc.name, h)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: warmed document differs from the source's", tc.name)
		}
	}

	cancel()
	for _, done := range dones {
		waitDone(t, done)
	}
}

// TestServeWarmFromBadSource: an unreachable snapshot source refuses to
// start the server rather than booting cold silently.
func TestServeWarmFromBadSource(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-addr", "127.0.0.1:0", "-warm-from", filepath.Join(t.TempDir(), "missing.ndjson")}, out); err == nil {
		t.Error("missing snapshot file accepted")
	}
}

// TestServeFleetFlagValidation: the self-healing flag set is checked before
// listening — duplicate members and a dangling -rewarm-every fail fast.
func TestServeFleetFlagValidation(t *testing.T) {
	out := &syncBuffer{}
	err := run(context.Background(), []string{
		"-peers", "http://a:1,http://b:1,http://a:1", "-self", "http://a:1"}, out)
	if err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Errorf("duplicate -peers member accepted (err=%v)", err)
	}
	// Trailing slashes normalise before the duplicate check, so a sneaky
	// "same member spelled twice" is still refused.
	err = run(context.Background(), []string{
		"-peers", "http://a:1,http://a:1/", "-self", "http://a:1"}, out)
	if err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Errorf("slash-disguised duplicate accepted (err=%v)", err)
	}
	if err := run(context.Background(), []string{"-rewarm-every", "1s"}, out); err == nil {
		t.Error("-rewarm-every without -warm-from accepted")
	}
}

// TestServeFleetReplication boots a two-member fleet with replication on:
// after one plan, the owner's push lands a verified replica on the other
// member; a fleet-wide invalidation is then visible on both, and
// /v1/cluster/status reports a live membership view.
func TestServeFleetReplication(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addrs := []string{freeAddr(t), freeAddr(t)}
	peers := "http://" + addrs[0] + ",http://" + addrs[1]
	var dones []chan error
	for _, a := range addrs {
		_, _, done := startRun(t, ctx,
			"-addr", a, "-peers", peers, "-self", "http://"+a,
			"-timeout", "30s", "-probe-every", "50ms")
		dones = append(dones, done)
	}

	body := `{"model": "TinyCNN", "glb_kb": 48}`
	resp, err := http.Post("http://"+addrs[0]+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d", resp.StatusCode)
	}
	key := resp.Header.Get("X-SMM-Plan-Key")
	if key == "" {
		t.Fatal("no X-SMM-Plan-Key header")
	}

	// The owner pushes asynchronously; poll until the replica lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var received int64
		for _, a := range addrs {
			received += metricValue(t, getBody(t, "http://"+a+"/metrics"), `smm_replicate_total{outcome="received"}`)
		}
		if received == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never landed (received=%d)", received)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Status view: each member sees both, alive.
	status := getBody(t, "http://"+addrs[0]+"/v1/cluster/status")
	for _, a := range addrs {
		if !strings.Contains(status, "http://"+a) {
			t.Errorf("cluster status missing member %s:\n%s", a, status)
		}
	}
	if strings.Contains(status, `"alive": false`) || strings.Contains(status, `"alive":false`) {
		t.Errorf("cluster status reports a dead member:\n%s", status)
	}

	// Fleet-wide invalidation: one DELETE is observed on both members.
	req, err := http.NewRequest(http.MethodDelete, "http://"+addrs[0]+"/v1/cache/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	db, _ := io.ReadAll(dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: status %d: %s", dresp.StatusCode, db)
	}
	if !strings.Contains(string(db), `"ok": true`) {
		t.Errorf("fan-out outcome missing from invalidate response:\n%s", db)
	}
	for _, a := range addrs {
		if n := metricValue(t, getBody(t, "http://"+a+"/metrics"), "smm_invalidate_total"); n < 1 {
			t.Errorf("member %s never applied the invalidation", a)
		}
	}
	// The invalidated key is gone fleet-wide: planning again costs a second
	// planner run somewhere (a peer fill still reports "hit" to the asker,
	// so the run count is the observable, not the cache header).
	resp2, err := http.Post("http://"+addrs[1]+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-invalidation plan: status %d", resp2.StatusCode)
	}
	var runs int64
	for _, a := range addrs {
		runs += metricValue(t, getBody(t, "http://"+a+"/metrics"), "smm_planner_latency_seconds_count")
	}
	if runs != 2 {
		t.Errorf("planner ran %d times fleet-wide after invalidation, want 2", runs)
	}

	cancel()
	for _, done := range dones {
		waitDone(t, done)
	}
}

// TestServeRewarm: a member with -rewarm-every pulls keys planned on its
// peer after boot, without a restart.
func TestServeRewarm(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	baseA, _, doneA := startRun(t, ctx, "-addr", "127.0.0.1:0", "-timeout", "30s")
	baseB, _, doneB := startRun(t, ctx, "-addr", "127.0.0.1:0", "-timeout", "30s",
		"-warm-from", baseA, "-rewarm-every", "25ms")

	// Planned on A *after* B booted: only the rewarm loop can carry it over.
	body := `{"model": "TinyCNN", "glb_kb": 40}`
	resp, err := http.Post(baseA+"/v1/plan", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed plan: status %d", resp.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(baseB+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-SMM-Cache") == "hit" {
			if !bytes.Equal(got, want) {
				t.Error("rewarmed document differs from the source's")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("rewarm never carried the key over")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cancel()
	waitDone(t, doneA)
	waitDone(t, doneB)
}
