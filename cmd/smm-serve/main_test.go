package main

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"scratchmem/internal/faultinject"
)

// syncBuffer is a goroutine-safe writer so the test can poll run's output
// while the server goroutine writes to it.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}

// The startup record is a slog line like `... msg=listening addr=127.0.0.1:41231 ...`.
var listenRe = regexp.MustCompile(`msg=listening addr=([^\s]+)`)

// TestServeLifecycle boots the real binary path on an ephemeral port,
// exercises a plan round trip and the cache-hit counter, then shuts down
// via context cancellation (the signal path).
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-timeout", "30s"}, out)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	body := `{"model": "TinyCNN", "glb_kb": 32}`
	for i, want := range []string{"miss", "hit"} {
		resp, err := http.Post(base+"/v1/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan %d: status %d: %s", i, resp.StatusCode, b)
		}
		if h := resp.Header.Get("X-SMM-Cache"); h != want {
			t.Errorf("plan %d: X-SMM-Cache = %q, want %q", i, h, want)
		}
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(mb), "smm_cache_hits_total 1") {
		t.Errorf("metrics missing cache hit:\n%s", mb)
	}

	cancel() // the signal path
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if s := out.String(); !strings.Contains(s, "draining") || !strings.Contains(s, "cache_hits=1") {
		t.Errorf("shutdown log incomplete:\n%s", s)
	}
}

func TestServeBadFlags(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-addr"}, out); err == nil {
		t.Error("dangling flag accepted")
	}
	if err := run(context.Background(), []string{"-addr", "256.0.0.1:99999"}, out); err == nil {
		t.Error("unlistenable address accepted")
	}
}

// TestServeFaultsFlag: -faults arms the injection registry for the server's
// lifetime (every plan fails retryably here, p=1) and disarms it on exit.
func TestServeFaultsFlag(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-faults", "seed=1;server.plan=error:1"}, out)
	}()

	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := listenRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "FAULT INJECTION ARMED") {
		t.Error("armed server did not announce the faults")
	}

	resp, err := http.Post(base+"/v1/plan", "application/json",
		strings.NewReader(`{"model": "TinyCNN", "glb_kb": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("injected plan: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected 503 missing Retry-After")
	}
	// The observer logs every fired fault through the server's logger.
	for !strings.Contains(out.String(), "fault injected") {
		if time.Now().After(deadline) {
			t.Fatalf("fired fault never logged; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
	if faultinject.Enabled() {
		t.Error("faults still armed after run returned")
	}
}

// TestServeDebugAddr: -debug-addr serves net/http/pprof on its own
// listener, announced through the structured log.
func TestServeDebugAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, out)
	}()

	debugRe := regexp.MustCompile(`debug_addr=([^\s]+)`)
	var debugBase string
	deadline := time.Now().Add(5 * time.Second)
	for debugBase == "" {
		if m := debugRe.FindStringSubmatch(out.String()); m != nil {
			debugBase = "http://" + m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("debug server never announced; output:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(debugBase + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(b), "goroutine") {
		t.Errorf("pprof index: status %d body %.80q", resp.StatusCode, b)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// TestServeFaultsBadSpec: a malformed spec refuses to start the server.
func TestServeFaultsBadSpec(t *testing.T) {
	out := &syncBuffer{}
	if err := run(context.Background(), []string{"-faults", "nonsense"}, out); err == nil {
		t.Error("malformed fault spec accepted")
	}
}
