// Command smm-serve runs the planning-as-a-service HTTP server: the
// paper's analyser (Algorithm 1), the end-to-end simulators and the DSE
// search behind a JSON API with a content-addressed plan cache
// (internal/server, internal/plancache).
//
// Usage:
//
//	smm-serve -addr :8080 -workers 8 -cache 512 -timeout 30s -queue 64
//	smm-serve -log-format json -slow-request 2s -debug-addr 127.0.0.1:6060
//	smm-serve -faults "seed=42;server.plan=error:0.1"   (chaos testing; also $SMM_FAULTS)
//	smm-serve -peers http://n1:8080,http://n2:8080 -self http://n1:8080   (fleet member)
//	smm-serve -probe-every 1s -replicate-queue 64  (fleet self-healing knobs)
//	smm-serve -warm-from http://n1:8080            (boot with a peer's cache)
//	smm-serve -warm-from http://n1:8080 -rewarm-every 30s   (keep pulling missing keys)
//	smm-serve -version
//
// Endpoints:
//
//	POST /v1/plan           {"model": "ResNet18", "glb_kb": 64}
//	POST /v1/plan/batch     {"requests": [{...}, ...]}                    (shared estimate memo)
//	POST /v1/simulate       {"model": "TinyCNN", "glb_kb": 32}            (plan timing)
//	POST /v1/simulate       {..., "baseline": {"split_percent": 50}}      (SCALE-Sim baseline)
//	POST /v1/dse            {"model": "TinyCNN", "glb_kb": 32}
//	POST /v1/peer/fill      (cluster-internal: compute locally, never forward)
//	POST /v1/peer/replicate (cluster-internal: store a verified successor replica)
//	GET  /v1/cache/snapshot (ndjson plan-cache dump for -warm-from)
//	DELETE /v1/cache/{key}  (invalidate one plan fleet-wide)
//	POST /v1/cache/purge    (empty the plan caches fleet-wide)
//	GET  /v1/cluster/status (this member's liveness view)
//	GET  /v1/trace/{key}    (?format=perfetto|csv — key from X-SMM-Plan-Key)
//	GET  /v1/spans
//	GET  /v1/models
//	GET  /v1/version
//	GET  /healthz
//	GET  /metrics
//
// With -peers, the static member list forms a consistent-hash ring over
// plan keys: a node that does not own a key asks the owner over POST
// /v1/peer/fill before planning locally, so each plan is computed once
// fleet-wide, and a per-peer circuit breaker plus local fallback keep a
// dead owner from taking the fleet down with it. -self must match this
// node's own entry in -peers; -hot-cache sizes the small local cache of
// remotely-owned plans layered in front of the ring. The membership list
// is static but liveness is dynamic: every member probes its peers each
// -probe-every, skips known-dead owners, and owners push freshly computed
// plans to their ring successor (bounded by -replicate-queue), so a miss
// falls back owner → successor replica → local compute.
//
// All operational output is structured (log/slog; -log-level, -log-format):
// an access-log record per request carrying the trace ID, warn records for
// slow requests past -slow-request and for every injected fault, and the
// startup/shutdown lifecycle. -debug-addr serves net/http/pprof on a
// separate listener so profiling never shares a port with the API.
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"slices"
	"strings"
	"time"

	"scratchmem/client"
	"scratchmem/internal/cli"
	"scratchmem/internal/cluster"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/plancache"
	"scratchmem/internal/server"
)

// DefaultHotCacheEntries sizes the layered hot cache of remotely-owned
// plans in fleet mode. Small on purpose: the ring owner holds the
// authoritative copy, this is just the working set a single node keeps
// re-serving.
const DefaultHotCacheEntries = 128

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stderr)
	stop()
	cli.Exit("smm-serve", err)
}

// run starts the server and blocks until ctx is cancelled (a signal) or
// the listener fails; it then drains in-flight requests and returns.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "max concurrent planner/simulator executions (0 = GOMAXPROCS)")
		cache        = fs.Int("cache", server.DefaultCacheEntries, "plan-cache capacity in entries (negative disables storage)")
		timeout      = fs.Duration("timeout", server.DefaultTimeout, "per-request deadline")
		drain        = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		queue        = fs.Int("queue", server.DefaultQueueDepth, "max requests waiting for a worker before shedding with 503 (negative = unbounded)")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "max time to read a full request, 0 disables")
		writeTimeout = fs.Duration("write-timeout", 0, "max time to write a response (0 = request timeout + 5s headroom)")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout, 0 disables")
		slowRequest  = fs.Duration("slow-request", 0, "also log requests slower than this at warn level (0 disables)")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
		faults       = fs.String("faults", os.Getenv("SMM_FAULTS"),
			`arm fault injection for chaos testing, e.g. "seed=42;server.plan=error:0.1;core.layer=latency:0.05:2ms" (default $SMM_FAULTS)`)
		peers = fs.String("peers", "",
			"comma-separated base URLs of every fleet member (consistent-hash ring; empty = standalone)")
		self = fs.String("self", "",
			"this node's own entry in -peers (required with -peers)")
		hotCache = fs.Int("hot-cache", DefaultHotCacheEntries,
			"entries in the layered hot cache of remotely-owned plans (fleet mode only)")
		probeEvery = fs.Duration("probe-every", cluster.DefaultProbeInterval,
			"peer health-probe period (0 disables liveness tracking; fleet mode only)")
		replicateQueue = fs.Int("replicate-queue", cluster.DefaultReplicateQueue,
			"pending successor-replication pushes before drop-oldest (0 disables replication; fleet mode only)")
		warmFrom = fs.String("warm-from", "",
			"warm the plan cache at boot from a snapshot: a peer base URL or an ndjson file")
		rewarmEvery = fs.Duration("rewarm-every", 0,
			"re-pull the -warm-from snapshot this often, inserting only missing keys (0 disables)")
		version  = fs.Bool("version", false, "print build information and exit")
		logFlags = cli.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		b, err := json.MarshalIndent(server.Version(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s\n", b)
		return nil
	}
	logger, err := logFlags.Logger(out)
	if err != nil {
		return err
	}
	if *faults != "" {
		if err := faultinject.EnableSpec(*faults); err != nil {
			return err
		}
		defer faultinject.Disable()
		faultinject.SetObserver(func(site string, kind faultinject.Kind) {
			logger.Warn("fault injected", "site", site, "kind", kind.String())
		})
		defer faultinject.SetObserver(nil)
		logger.Warn("FAULT INJECTION ARMED — not for production", "spec", *faults)
	}

	cfg := server.Config{
		Workers:      *workers,
		CacheEntries: *cache,
		Timeout:      *timeout,
		QueueDepth:   *queue,
		Logger:       logger,
		SlowRequest:  *slowRequest,
	}
	if *peers != "" {
		backend, fleet, err := clusterBackend(*peers, *self, *hotCache, *probeEvery, *replicateQueue)
		if err != nil {
			return err
		}
		cfg.Cluster = backend
		cfg.Fleet = fleet
		logger.Info("fleet member", "self", *self, "peers", *peers, "hot_cache", *hotCache,
			"probe_every", *probeEvery, "replicate_queue", *replicateQueue)
	} else if *self != "" {
		return fmt.Errorf("-self is only meaningful with -peers")
	}
	if *rewarmEvery > 0 && *warmFrom == "" {
		return fmt.Errorf("-rewarm-every requires -warm-from")
	}
	srv := server.New(cfg)
	if cfg.Fleet != nil {
		cfg.Fleet.Health.Start()
		cfg.Fleet.Repl.Start()
		defer cfg.Fleet.Stop()
	}
	if *warmFrom != "" {
		rd, err := warmSource(ctx, *warmFrom)
		if err != nil {
			return fmt.Errorf("warm-from: %w", err)
		}
		added, skipped, err := srv.RestoreSnapshot(rd)
		rd.Close()
		if err != nil {
			return fmt.Errorf("warm-from: %w", err)
		}
		logger.Info("cache warmed", "source", *warmFrom, "added", added, "skipped", skipped)
	}
	if *rewarmEvery > 0 {
		// The periodic re-warm closes the healing loop: a member that was
		// down while the fleet kept planning pulls the missing keys back
		// without a restart, and a member that never went down pays only a
		// Contains probe per record.
		go func() {
			t := time.NewTicker(*rewarmEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				rd, err := warmSource(ctx, *warmFrom)
				if err != nil {
					logger.Warn("rewarm pull failed", "source", *warmFrom, "error", err)
					continue
				}
				added, skipped, err := srv.RestoreSnapshotMissing(rd)
				rd.Close()
				if err != nil {
					logger.Warn("rewarm restore failed", "source", *warmFrom, "error", err)
					continue
				}
				if added > 0 || skipped > 0 {
					logger.Info("cache rewarmed", "source", *warmFrom, "added", added, "skipped", skipped)
				}
			}
		}()
	}
	if *writeTimeout == 0 {
		// The handlers enforce their own deadline; give writes headroom
		// beyond it so a slow client cannot truncate a computed response.
		*writeTimeout = *timeout + 5*time.Second
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go http.Serve(dln, dbg)
		logger.Info("debug server listening", "debug_addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", *workers, "cache", *cache, "timeout", *timeout)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down, draining in-flight requests", "drain", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	cs := srv.CacheStats()
	logger.Info("bye", "cache_hits", cs.Hits, "cache_misses", cs.Misses,
		"cache_coalesced", cs.Coalesced, "cache_evictions", cs.Evictions)
	return nil
}

// clusterBackend builds the server's fleet cache stack and control plane:
// a consistent-hash ring over the static member list, peer fills and
// successor lookups through the resilient client, a small hot cache of
// remotely-owned plans layered in front, plus health probing, successor
// replication and the fan-out invalidation transport.
func clusterBackend(peers, self string, hotEntries int, probeEvery time.Duration, replicateQueue int) (func(*plancache.Cache) cluster.Backend, *cluster.Fleet, error) {
	var members []string
	seen := make(map[string]bool)
	for _, m := range strings.Split(peers, ",") {
		if m = strings.TrimSpace(m); m == "" {
			continue
		}
		m = strings.TrimRight(m, "/")
		if seen[m] {
			// A duplicated member would silently deduplicate inside the ring
			// and almost certainly means a typo in a deploy config: refuse
			// rather than run with a membership the operator did not write.
			return nil, nil, fmt.Errorf("-peers lists %q more than once", m)
		}
		seen[m] = true
		members = append(members, m)
	}
	ring, err := cluster.NewRing(members, cluster.DefaultReplicas)
	if err != nil {
		return nil, nil, err
	}
	if self == "" {
		return nil, nil, fmt.Errorf("-self is required with -peers")
	}
	self = strings.TrimRight(strings.TrimSpace(self), "/")
	if !slices.Contains(ring.Members(), self) {
		return nil, nil, fmt.Errorf("-self %q is not one of -peers %q", self, peers)
	}
	// Peer fills get a single retry: the Peer backend already breaks the
	// circuit and falls back to planning locally, so a long client-side
	// retry loop would only delay that fallback.
	fill := client.New("")
	fill.MaxRetries = 1
	transport := fill.Transport()

	fleet := &cluster.Fleet{
		Ring:       ring,
		Self:       self,
		Invalidate: fill.InvalidateTransport(),
		Status:     fill.StatusTransport(),
	}
	if probeEvery > 0 {
		fleet.Health = cluster.NewHealth(ring, self, fill.ProbeTransport(),
			cluster.HealthOptions{Interval: probeEvery})
	}
	if replicateQueue > 0 {
		fleet.Repl = cluster.NewReplicator(ring, self, fill.ReplicateTransport(), fleet.Health,
			cluster.ReplicatorOptions{QueueDepth: replicateQueue})
	}
	popts := cluster.PeerOptions{Health: fleet.Health, Lookup: fill.LookupTransport()}
	return func(local *plancache.Cache) cluster.Backend {
		peer := cluster.NewPeer(cluster.NewLocal(local), ring, self, transport, popts)
		return cluster.NewLayered(plancache.New(hotEntries), peer, peer.Remote)
	}, fleet, nil
}

// warmSource opens the -warm-from snapshot stream: a peer base URL (the
// /v1/cache/snapshot path is appended when the URL carries none) or a
// local ndjson file.
func warmSource(ctx context.Context, src string) (io.ReadCloser, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		u, err := url.Parse(src)
		if err != nil {
			return nil, err
		}
		if u.Path == "" || u.Path == "/" {
			u.Path = "/v1/cache/snapshot"
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("%s answered %d", u, resp.StatusCode)
		}
		return resp.Body, nil
	}
	return os.Open(src)
}
