// Command smm-serve runs the planning-as-a-service HTTP server: the
// paper's analyser (Algorithm 1), the end-to-end simulators and the DSE
// search behind a JSON API with a content-addressed plan cache
// (internal/server, internal/plancache).
//
// Usage:
//
//	smm-serve -addr :8080 -workers 8 -cache 512 -timeout 30s -queue 64
//	smm-serve -log-format json -slow-request 2s -debug-addr 127.0.0.1:6060
//	smm-serve -faults "seed=42;server.plan=error:0.1"   (chaos testing; also $SMM_FAULTS)
//
// Endpoints:
//
//	POST /v1/plan        {"model": "ResNet18", "glb_kb": 64}
//	POST /v1/simulate    {"model": "TinyCNN", "glb_kb": 32}            (plan timing)
//	POST /v1/simulate    {..., "baseline": {"split_percent": 50}}      (SCALE-Sim baseline)
//	POST /v1/dse         {"model": "TinyCNN", "glb_kb": 32}
//	GET  /v1/trace/{key} (?format=perfetto|csv — key from X-SMM-Plan-Key)
//	GET  /v1/spans
//	GET  /v1/models
//	GET  /healthz
//	GET  /metrics
//
// All operational output is structured (log/slog; -log-level, -log-format):
// an access-log record per request carrying the trace ID, warn records for
// slow requests past -slow-request and for every injected fault, and the
// startup/shutdown lifecycle. -debug-addr serves net/http/pprof on a
// separate listener so profiling never shares a port with the API.
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"scratchmem/internal/cli"
	"scratchmem/internal/faultinject"
	"scratchmem/internal/server"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stderr)
	stop()
	cli.Exit("smm-serve", err)
}

// run starts the server and blocks until ctx is cancelled (a signal) or
// the listener fails; it then drains in-flight requests and returns.
func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-serve", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 0, "max concurrent planner/simulator executions (0 = GOMAXPROCS)")
		cache        = fs.Int("cache", server.DefaultCacheEntries, "plan-cache capacity in entries (negative disables storage)")
		timeout      = fs.Duration("timeout", server.DefaultTimeout, "per-request deadline")
		drain        = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		queue        = fs.Int("queue", server.DefaultQueueDepth, "max requests waiting for a worker before shedding with 503 (negative = unbounded)")
		readTimeout  = fs.Duration("read-timeout", 10*time.Second, "max time to read a full request, 0 disables")
		writeTimeout = fs.Duration("write-timeout", 0, "max time to write a response (0 = request timeout + 5s headroom)")
		idleTimeout  = fs.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout, 0 disables")
		slowRequest  = fs.Duration("slow-request", 0, "also log requests slower than this at warn level (0 disables)")
		debugAddr    = fs.String("debug-addr", "", "serve net/http/pprof on this separate address (empty disables)")
		faults       = fs.String("faults", os.Getenv("SMM_FAULTS"),
			`arm fault injection for chaos testing, e.g. "seed=42;server.plan=error:0.1;core.layer=latency:0.05:2ms" (default $SMM_FAULTS)`)
		logFlags = cli.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logFlags.Logger(out)
	if err != nil {
		return err
	}
	if *faults != "" {
		if err := faultinject.EnableSpec(*faults); err != nil {
			return err
		}
		defer faultinject.Disable()
		faultinject.SetObserver(func(site string, kind faultinject.Kind) {
			logger.Warn("fault injected", "site", site, "kind", kind.String())
		})
		defer faultinject.SetObserver(nil)
		logger.Warn("FAULT INJECTION ARMED — not for production", "spec", *faults)
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		CacheEntries: *cache,
		Timeout:      *timeout,
		QueueDepth:   *queue,
		Logger:       logger,
		SlowRequest:  *slowRequest,
	})
	if *writeTimeout == 0 {
		// The handlers enforce their own deadline; give writes headroom
		// beyond it so a slow client cannot truncate a computed response.
		*writeTimeout = *timeout + 5*time.Second
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go http.Serve(dln, dbg)
		logger.Info("debug server listening", "debug_addr", dln.Addr().String())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", *workers, "cache", *cache, "timeout", *timeout)

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down, draining in-flight requests", "drain", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	cs := srv.CacheStats()
	logger.Info("bye", "cache_hits", cs.Hits, "cache_misses", cs.Misses,
		"cache_coalesced", cs.Coalesced, "cache_evictions", cs.Evictions)
	return nil
}
