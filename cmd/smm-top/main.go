// Command smm-top is a small operator console for an smm-serve fleet: it
// polls GET /v1/cluster/overview on one member and renders a refreshing
// table of the whole fleet — liveness votes from every member's health
// view (so asymmetric partitions show up as split votes), per-member cache
// and memo hit ratios, ring ownership shares, replication queue depth and
// degraded-plan counts — plus the merged totals row.
//
// Usage:
//
//	smm-top                         # poll http://localhost:8080 every 2s
//	smm-top -server http://host:8871 -every 1s
//	smm-top -once                   # one table, then exit (scripts, CI)
//	smm-top -once -json             # one raw overview document on stdout
//
// A member the queried node cannot reach renders as an error-stub row, not
// a failure: the console degrades exactly like the endpoint it polls.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"scratchmem/client"
	"scratchmem/internal/cli"
	"scratchmem/internal/server"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	cli.Exit("smm-top", err)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-top", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		serverURL = fs.String("server", "http://localhost:8080", "base URL of any fleet member")
		every     = fs.Duration("every", 2*time.Second, "poll period")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-poll deadline")
		once      = fs.Bool("once", false, "render one snapshot and exit")
		asJSON    = fs.Bool("json", false, "emit the raw overview document instead of the table (implies -once semantics per poll)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *every <= 0 {
		return fmt.Errorf("-every must be > 0, got %s", *every)
	}
	c := client.New(*serverURL)
	c.MaxRetries = 1 // the poll loop is itself the retry policy

	ctx, stop := cli.SignalContext()
	defer stop()
	for {
		if err := poll(ctx, c, out, *serverURL, *timeout, *asJSON, !*once); err != nil {
			if *once || ctx.Err() != nil {
				return err
			}
			// Keep polling through transient failures: an operator watching a
			// half-dead fleet is exactly who needs the console to stay up.
			fmt.Fprintf(out, "smm-top: %v (retrying in %s)\n", err, *every)
		}
		if *once {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*every):
		}
	}
}

// poll fetches one overview and renders it. clear prepends the ANSI
// home+clear sequence so successive tables refresh in place.
func poll(ctx context.Context, c *client.Client, out io.Writer, serverURL string, timeout time.Duration, asJSON, clear bool) error {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	ov, err := c.ClusterOverview(pctx)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(ov)
	}
	if clear {
		fmt.Fprint(out, "\x1b[H\x1b[2J")
	}
	render(out, serverURL, ov)
	return nil
}

// votes tallies the fleet-wide health matrix: for each member, how many of
// the reachable members' own views consider it alive. A fully healthy
// N-member fleet shows N/N everywhere; an asymmetric partition shows up as
// a split vote (e.g. 2/3) instead of hiding behind one member's opinion.
func votes(ov *server.OverviewResponse) (alive map[string]int, views int) {
	alive = make(map[string]int)
	for _, row := range ov.Members {
		if row.Status == nil {
			continue
		}
		views++
		for _, mh := range row.Status.Members {
			if mh.Alive {
				alive[mh.Member]++
			}
		}
	}
	return alive, views
}

// ratio renders hits/(hits+misses) as a percentage, "-" when idle.
func ratio(hits, misses int64) string {
	if hits+misses == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
}

// render writes one table snapshot.
func render(out io.Writer, serverURL string, ov *server.OverviewResponse) {
	aliveVotes, views := votes(ov)
	fmt.Fprintf(out, "smm-top — fleet via %s", serverURL)
	if ov.Self != "" {
		fmt.Fprintf(out, " (answered by %s)", ov.Self)
	}
	fmt.Fprintf(out, " — %d members, %d reachable\n\n", ov.Totals.Members, ov.Totals.Reachable)

	tw := newTable(out, "MEMBER", "VOTES", "SHARE", "ENTRIES", "HIT", "MEMO", "REPLQ", "DEGRADED", "STATUS")
	rows := append([]server.OverviewMember(nil), ov.Members...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Member < rows[j].Member })
	for _, row := range rows {
		vote := fmt.Sprintf("%d/%d", aliveVotes[row.Member], views)
		share := fmt.Sprintf("%.1f%%", 100*row.RingShare)
		if row.Status == nil {
			tw.row(row.Member, vote, share, "-", "-", "-", "-", "-", "DOWN: "+row.Error)
			continue
		}
		st := row.Status
		tw.row(row.Member, vote, share,
			fmt.Sprintf("%d", st.Cache.Entries),
			ratio(st.Cache.Hits, st.Cache.Misses),
			ratio(st.Memo.Hits, st.Memo.Misses),
			fmt.Sprintf("%d", st.Replication.Queued),
			fmt.Sprintf("%d", st.DegradedPlans),
			"up")
	}
	tw.row("TOTAL", "", "",
		fmt.Sprintf("%d", ov.Totals.CacheEntries),
		ratio(ov.Totals.CacheHits, ov.Totals.CacheMisses),
		"",
		fmt.Sprintf("%d", ov.Totals.ReplicationQueued),
		fmt.Sprintf("%d", ov.Totals.DegradedPlans),
		"")
	tw.flush()
}

// table is a minimal column aligner (text/tabwriter pads with tabs that
// render unevenly in narrow terminals; fixed two-space gutters read better
// for a top-style refresh).
type table struct {
	out    io.Writer
	header []string
	rows   [][]string
}

func newTable(out io.Writer, header ...string) *table {
	return &table{out: out, header: header}
}

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) flush() {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			// Left-align the first (name) column, right-align the numbers,
			// left-align the trailing status text.
			if i == 0 || i == len(t.header)-1 {
				b.WriteString(c + strings.Repeat(" ", width[i]-len(c)))
			} else {
				b.WriteString(strings.Repeat(" ", width[i]-len(c)) + c)
			}
		}
		fmt.Fprintln(t.out, strings.TrimRight(b.String(), " "))
	}
	line(t.header)
	for _, r := range t.rows {
		line(r)
	}
}
