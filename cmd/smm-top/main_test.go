package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"scratchmem/internal/cluster"
	"scratchmem/internal/plancache"
	"scratchmem/internal/server"
)

// fakeOverview is a three-member fleet document with one dead member and an
// asymmetric health matrix: a sees c dead, b sees everyone alive.
func fakeOverview() server.OverviewResponse {
	status := func(self string, aliveC bool) *server.ClusterStatus {
		return &server.ClusterStatus{
			Self: self,
			Members: []cluster.MemberHealth{
				{Member: "http://a", Alive: true},
				{Member: "http://b", Alive: true},
				{Member: "http://c", Alive: aliveC},
			},
			Cache: plancache.Stats{Hits: 8, Misses: 2, Entries: 5},
		}
	}
	return server.OverviewResponse{
		Self: "http://a",
		Members: []server.OverviewMember{
			{Member: "http://a", RingShare: 0.4, Status: status("http://a", false)},
			{Member: "http://b", RingShare: 0.35, Status: status("http://b", true)},
			{Member: "http://c", RingShare: 0.25, Error: "member marked dead by health probes"},
		},
		Totals: server.OverviewTotals{Members: 3, Reachable: 2, CacheEntries: 10, CacheHits: 16, CacheMisses: 4},
	}
}

func overviewServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/overview", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(fakeOverview())
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestOnceTable: -once renders every member, the split liveness vote, the
// dead member's error stub, and the totals row — then exits cleanly.
func TestOnceTable(t *testing.T) {
	ts := overviewServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-once", "-server", ts.URL}, &buf); err != nil {
		t.Fatalf("run -once: %v\n%s", err, buf.String())
	}
	got := buf.String()
	for _, want := range []string{
		"http://a", "http://b", "http://c",
		"3 members, 2 reachable",
		"DOWN: member marked dead by health probes",
		"2/2", // a and b both alive in both views
		"1/2", // c: split vote (a says dead, b says alive)
		"TOTAL",
		"80.0%", // totals hit ratio 16/20
	} {
		if !strings.Contains(got, want) {
			t.Errorf("table missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Error("-once must not emit the screen-clear escape")
	}
}

// TestOnceJSON: -once -json round-trips the raw document.
func TestOnceJSON(t *testing.T) {
	ts := overviewServer(t)
	var buf bytes.Buffer
	if err := run([]string{"-once", "-json", "-server", ts.URL}, &buf); err != nil {
		t.Fatalf("run -once -json: %v\n%s", err, buf.String())
	}
	var ov server.OverviewResponse
	if err := json.Unmarshal(buf.Bytes(), &ov); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, buf.String())
	}
	if len(ov.Members) != 3 || ov.Self != "http://a" {
		t.Errorf("decoded overview lost content: %+v", ov)
	}
}

// TestOnceUnreachable: a dead endpoint under -once is a loud error, not a
// silent empty table.
func TestOnceUnreachable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-once", "-server", "http://127.0.0.1:1", "-timeout", "500ms"}, &buf); err == nil {
		t.Fatal("run -once against a dead endpoint succeeded")
	}
}

// TestRejectsBadEvery pins the flag validation.
func TestRejectsBadEvery(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-every", "0s"}, &buf); err == nil {
		t.Fatal("run accepted -every 0s")
	}
}
