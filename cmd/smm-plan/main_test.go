package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	scratchmem "scratchmem"
	"scratchmem/internal/program"
	"scratchmem/internal/server"
)

func TestRunBuiltinModel(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "ResNet18", "-glb", "64"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ResNet18", "het", "conv1", "totals:", "policies"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunLatencyInterlayer(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-objective", "latency", "-interlayer"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inter-layer reuse coverage") {
		t.Error("missing inter-layer coverage line")
	}
}

func TestRunHomNoPrefetch(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "MobileNet", "-glb", "128", "-hom", "-no-prefetch", "-layers=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hom ") {
		t.Error("missing hom scheme label")
	}
	if strings.Contains(sb.String(), "prefetching coverage") {
		t.Error("prefetching reported despite -no-prefetch")
	}
}

func TestRunModelFromFile(t *testing.T) {
	dir := t.TempDir()
	net, _ := scratchmem.BuiltinModel("TinyCNN")
	path := filepath.Join(dir, "tiny.json")
	if err := scratchmem.SaveModel(net, path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", path, "-glb", "32"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TinyCNN") {
		t.Error("file model not loaded")
	}
}

// TestRunJSONGolden pins the -json document format. Regenerate with:
//
//	go run ./cmd/smm-plan -model TinyCNN -glb 32 -json > cmd/smm-plan/testdata/tinycnn_glb32.golden.json
func TestRunJSONGolden(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "tinycnn_glb32.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sb.String() != string(want) {
		t.Errorf("-json output diverged from golden file:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("-json output is not a valid PlanDoc: %v", err)
	}
}

// TestRunJSONMatchesServer asserts the CLI and the /v1/plan endpoint emit
// byte-identical documents for the same request.
func TestRunJSONMatchesServer(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/plan", "application/json",
		strings.NewReader(`{"model": "TinyCNN", "glb_kb": 32}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("server: status %d: %s", resp.StatusCode, body)
	}
	if sb.String() != string(body) {
		t.Errorf("CLI -json and server /v1/plan bodies differ:\ncli:\n%s\nserver:\n%s", sb.String(), body)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "nope"}, &sb); err == nil {
		t.Error("unknown model accepted")
	}
	if err := run(context.Background(), []string{"-objective", "speed"}, &sb); err == nil {
		t.Error("unknown objective accepted")
	}
	if err := run(context.Background(), []string{"-glb", "x"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
	// A corrupt model file must fail cleanly.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-model", bad}, &sb); err == nil {
		t.Error("corrupt model accepted")
	}
}

func TestRunExportProgram(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-export", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "exported") {
		t.Error("missing export confirmation")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	prog, err := program.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Model != "TinyCNN" || len(prog.Layers) == 0 {
		t.Errorf("bad program: %+v", prog)
	}
}

func TestRunSimulate(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-simulate", "-layers=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "end-to-end simulation") {
		t.Error("missing simulation line")
	}
}

// TestRunServerMode: -server prints the remote plan document byte-identical
// to what a local -json run emits for the same request.
func TestRunServerMode(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var local strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-json"}, &local); err != nil {
		t.Fatal(err)
	}
	var remote strings.Builder
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-server", ts.URL}, &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("-server output differs from local -json:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}
}

// TestRunServerModeModelFile: a model loaded from disk travels inline, so
// the server plans networks it has never heard of.
func TestRunServerModeModelFile(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	net, err := scratchmem.BuiltinModel("TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "custom.json")
	if err := scratchmem.SaveModel(net, path); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", path, "-glb", "32", "-server", ts.URL}, &sb); err != nil {
		t.Fatal(err)
	}
	var doc scratchmem.PlanDoc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("remote output is not a plan document: %v", err)
	}
	if doc.Model != "TinyCNN" || len(doc.Layers) == 0 {
		t.Errorf("unexpected remote plan: model=%q layers=%d", doc.Model, len(doc.Layers))
	}
}

// TestRunServerModeErrors: -strict surfaces the remote 422, and flags that
// only make sense locally are rejected up front.
func TestRunServerModeErrors(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	var sb strings.Builder
	err := run(context.Background(), []string{"-model", "ResNet18", "-glb", "1", "-strict", "-server", ts.URL}, &sb)
	if err == nil || !strings.Contains(err.Error(), "422") {
		t.Errorf("strict remote plan err = %v, want the 422", err)
	}
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-server", ts.URL, "-simulate"}, &sb); err == nil {
		t.Error("-server -simulate accepted")
	}
	if err := run(context.Background(), []string{"-model", "TinyCNN", "-glb", "32", "-server", ts.URL, "-export", "x.json"}, &sb); err == nil {
		t.Error("-server -export accepted")
	}
}

// TestRunStrictLocal: without -strict an impossible GLB degrades instead of
// failing; with it the historical error returns.
func TestRunStrictLocal(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-model", "ResNet18", "-glb", "1", "-json"}, &sb); err != nil {
		t.Fatalf("non-strict impossible plan: %v", err)
	}
	if !strings.Contains(sb.String(), `"degraded": true`) {
		t.Error("degraded document missing its marker")
	}
	if err := run(context.Background(), []string{"-model", "ResNet18", "-glb", "1", "-strict"}, &sb); err == nil {
		t.Error("-strict impossible plan succeeded")
	}
}
