// Command smm-plan runs the paper's memory-management technique on a model
// and prints the per-layer execution plan with its estimated off-chip
// traffic, latency and scratchpad footprint.
//
// Usage:
//
//	smm-plan -model ResNet18 -glb 64 -objective accesses
//	smm-plan -model my_net.json -glb 256 -objective latency -interlayer
//	smm-plan -model topology.csv -glb 128 -width 16 -hom
//	smm-plan -model ResNet18 -glb 64 -server http://localhost:8080
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	scratchmem "scratchmem"
	"scratchmem/client"
	"scratchmem/internal/cli"
	"scratchmem/internal/core"
	"scratchmem/internal/program"
	"scratchmem/internal/report"
	"scratchmem/internal/server"
	"scratchmem/internal/simulate"
)

func main() {
	ctx, stop := cli.SignalContext()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	cli.Exit("smm-plan", err)
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-plan", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		modelFlag  = fs.String("model", "ResNet18", "built-in model name or path to a .json/.csv model description")
		glbKB      = fs.Int("glb", 64, "global buffer size in kB")
		objective  = fs.String("objective", "accesses", "optimisation objective: accesses or latency")
		width      = fs.Int("width", 8, "data width in bits (8, 16, 32)")
		batch      = fs.Int("batch", 1, "batch size (filter-resident policies amortise weights)")
		hom        = fs.Bool("hom", false, "use the best homogeneous scheme instead of the heterogeneous one")
		interlayer = fs.Bool("interlayer", false, "enable inter-layer reuse")
		noPrefetch = fs.Bool("no-prefetch", false, "disable the prefetching policy variants")
		jsonOut    = fs.Bool("json", false, "emit the plan as JSON (the same document smm-serve's /v1/plan returns) instead of the table")
		strict     = fs.Bool("strict", false, "fail when no policy fits the GLB instead of emitting a degraded fallback plan")
		serverURL  = fs.String("server", "", "plan via a running smm-serve at this base URL instead of locally (always prints the JSON document; retries transient failures)")
		showLayers = fs.Bool("layers", true, "print the per-layer policy table")
		export     = fs.String("export", "", "compile the plan to a command-stream JSON at this path")
		sim        = fs.Bool("simulate", false, "time the plan end-to-end on the ideal and banked-DRAM backends")
		logFlags   = cli.RegisterLogFlags(fs)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := logFlags.Logger(os.Stderr)
	if err != nil {
		return err
	}

	net, err := loadModel(*modelFlag)
	if err != nil {
		return err
	}
	obj := core.MinAccesses
	switch *objective {
	case "accesses":
	case "latency":
		obj = core.MinLatency
	default:
		return fmt.Errorf("unknown objective %q (want accesses or latency)", *objective)
	}
	cfg := scratchmem.DefaultConfig(*glbKB)
	cfg.DataWidthBits = *width
	if *batch > 1 { // 0 and 1 both mean single inference; keep the config canonical
		cfg.Batch = *batch
	}
	if *serverURL != "" {
		if *export != "" || *sim {
			return fmt.Errorf("-export and -simulate run locally and cannot be combined with -server")
		}
		return planViaServer(ctx, out, *serverURL, *modelFlag, net, cfg, *objective, server.PlanRequest{
			Homogeneous:     *hom,
			DisablePrefetch: *noPrefetch,
			InterLayerReuse: *interlayer,
			Strict:          *strict,
		})
	}

	plan, err := scratchmem.PlanModelCtx(ctx, net, scratchmem.PlanOptions{
		Config:          cfg,
		Objective:       obj,
		Homogeneous:     *hom,
		DisablePrefetch: *noPrefetch,
		InterLayerReuse: *interlayer,
		Strict:          *strict,
	}, cli.LogProgress(logger))
	if err != nil {
		return err
	}
	if plan.Degraded {
		logger.Warn("plan degraded", "model", net.Name, "mode", plan.DegradedMode)
	}

	if *jsonOut {
		return scratchmem.PlanDocument(plan).Encode(out)
	}

	fmt.Fprintf(out, "%s: %s scheme, objective %s, GLB %d kB, %d-bit\n",
		net.Name, plan.Scheme, plan.Objective, *glbKB, *width)
	if *showLayers {
		t := report.NewTable("", "L", "layer", "policy", "n", "mem kB", "accesses", "latency", "inter")
		for i := range plan.Layers {
			lp := &plan.Layers[i]
			label := lp.Est.Policy.Short()
			if lp.Est.Opts.Prefetch {
				label += "+p"
			}
			inter := ""
			if lp.ConsumesResident {
				inter += "<"
			}
			if lp.KeepsResident {
				inter += ">"
			}
			t.Row(i+1, lp.Layer.Name, label, lp.Est.N,
				float64(lp.Est.MemoryBytes)/1024, lp.Est.AccessElems, lp.Est.LatencyCycles, inter)
		}
		if err := t.Render(out); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "\ntotals: accesses %.2f MB, latency %.3f Mcycles, peak memory %.1f kB, policies %v\n",
		float64(plan.AccessBytes())/(1024*1024),
		float64(plan.LatencyCycles())/1e6,
		float64(plan.MaxMemoryBytes())/1024,
		plan.PolicyMix())
	if *interlayer {
		fmt.Fprintf(out, "inter-layer reuse coverage: %.0f%% of %d chainable transitions\n",
			100*plan.InterLayerCoverage(), plan.ChainableTransitions)
	}
	if plan.PrefetchCoverage() > 0 {
		fmt.Fprintf(out, "prefetching coverage: %.0f%% of layers\n", 100*plan.PrefetchCoverage())
	}
	if *sim {
		ideal, err := simulate.RunCtx(ctx, plan, simulate.Options{}, nil)
		if err != nil {
			return err
		}
		banked, err := simulate.RunCtx(ctx, plan, simulate.Options{Backend: simulate.BankedDRAM}, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "end-to-end simulation: ideal-BW %.3f Mcycles (estimate %.3f), banked DRAM %.3f Mcycles (%d row hits, %d misses)\n",
			float64(ideal.Cycles)/1e6, float64(ideal.EstimateCycles)/1e6,
			float64(banked.Cycles)/1e6, banked.DRAMHits, banked.DRAMMisses)
	}
	if *export != "" {
		prog, err := program.CompileCtx(ctx, plan, nil)
		if err != nil {
			return err
		}
		f, err := os.Create(*export)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := prog.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(out, "exported %d ops (%d encoded) to %s\n",
			prog.Ops(), encodedOps(prog), *export)
	}
	return nil
}

// planViaServer sends the request to a running smm-serve and prints the
// server's canonical JSON plan document verbatim (byte-identical to what
// -json prints for a local plan). A builtin model travels by name; a model
// loaded from a file travels inline, so the server needs no access to the
// local filesystem. The client retries shed and faulted requests with
// backoff, honouring Retry-After and the command's signal context.
func planViaServer(ctx context.Context, out io.Writer, url, modelArg string, net *scratchmem.Network, cfg scratchmem.Config, objective string, req server.PlanRequest) error {
	doc := scratchmem.NewConfigDoc(cfg)
	req.Config = &doc
	req.Objective = objective
	if _, err := os.Stat(modelArg); err == nil {
		var buf bytes.Buffer
		if err := net.WriteJSON(&buf); err != nil {
			return err
		}
		req.Network = json.RawMessage(buf.Bytes())
	} else {
		req.Model = modelArg
	}
	body, err := client.New(url).PlanRaw(ctx, req)
	if err != nil {
		return err
	}
	_, err = out.Write(body)
	return err
}

func encodedOps(p *program.Program) int {
	n := 0
	for i := range p.Layers {
		n += len(p.Layers[i].Ops)
	}
	return n
}

func loadModel(s string) (*scratchmem.Network, error) {
	if _, err := os.Stat(s); err == nil {
		return scratchmem.LoadModel(s)
	}
	return scratchmem.BuiltinModel(s)
}
