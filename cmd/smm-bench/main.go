// Command smm-bench measures the planning hot paths and emits a
// machine-readable before/after document (BENCH_10.json by default), so the
// memoization + fan-out work of PR 5 and the differential planning of
// PR 10 stay pinned to numbers a CI step or a reviewer can diff — and,
// with -against, acts as the CI regression gate over a previously
// committed document.
//
// Document format (schema "smm-bench/v1"):
//
//	{
//	  "schema": "smm-bench/v1",
//	  "gomaxprocs": 1,
//	  "benchmarks": [
//	    {
//	      "name": "PlannerAllModels",         // matches the Go benchmark name
//	      "before_ns_per_op": 7160979,        // pre-optimisation cost
//	      "before_source": "seed",            // "seed": recorded at the seed
//	                                          // commit; "measured": the
//	                                          // sequential memo-free path run
//	                                          // by this invocation
//	      "after_ns_per_op": 2262410,         // measured by this invocation
//	      "speedup": 3.17,
//	      "allocs_per_op": 12,                // heap allocations per op on
//	                                          // the measured (after) path
//	      "sequential_ns_per_op": 7011234     // optional: the memo-free
//	                                          // reference measured live, for
//	                                          // workloads that expose one
//	    }, ...
//	  ]
//	}
//
// Usage:
//
//	smm-bench                 # ~1s per workload, writes BENCH_10.json
//	smm-bench -time 5 -count 3 -o /tmp/bench.json
//	smm-bench -quick          # single iteration per workload (CI smoke)
//	smm-bench -against BENCH_5.json   # regression gate: non-zero exit when
//	                                  # any shared benchmark slowed >10%
//	                                  # (tune with -tolerance)
//	smm-bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	                          # diagnose a gate failure with go tool pprof
//
// The -against gate is what CI runs: it compares this invocation's
// after_ns_per_op against the named document's, per benchmark name, so the
// BENCH trajectory only ever moves one way.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	scratchmem "scratchmem"
	"scratchmem/internal/cli"
	"scratchmem/internal/core"
	"scratchmem/internal/dse"
	"scratchmem/internal/experiments"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/plancache"
	"scratchmem/internal/policy"
)

// seedNsPerOp records `go test -bench -benchtime 30x` at the seed commit
// (the tree immediately before this PR) on the reference machine, so every
// emitted document carries the baseline the optimisation was measured
// against even where the old code path no longer exists.
var seedNsPerOp = map[string]int64{
	"Estimate":         237,
	"PlanModel":        45006,
	"PlannerHet":       45351,
	"PlannerAllModels": 7160979,
	"Fig5_Accesses":    14971223,
	"Fig8_Latency":     26905313,
	"DSELayer":         85865,
}

// entry is one benchmark row of the emitted document.
type entry struct {
	Name         string  `json:"name"`
	BeforeNsOp   int64   `json:"before_ns_per_op"`
	BeforeSource string  `json:"before_source"`
	AfterNsOp    int64   `json:"after_ns_per_op"`
	Speedup      float64 `json:"speedup"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	SequentialNs int64   `json:"sequential_ns_per_op,omitempty"`
}

// document is the whole BENCH_5.json payload.
type document struct {
	Schema     string  `json:"schema"`
	GoMaxProcs int     `json:"gomaxprocs"`
	Benchmarks []entry `json:"benchmarks"`
}

// workload names one measured code path. run must perform exactly one
// operation (one figure regeneration, one plan, one estimate); sequential
// optionally performs the same operation through the memo-free, one-worker
// reference path.
type workload struct {
	name       string
	run        func()
	sequential func()
}

// seqPlanner is the pre-PR reference: no estimate memo, no winner caches,
// one worker.
func seqPlanner(kb int, obj core.Objective) *core.Planner {
	pl := &core.Planner{Cfg: policy.Default(kb), Objective: obj, Workers: 1}
	pl.UseMemo(nil)
	return pl
}

func mustPlan(_ *core.Plan, err error) {
	if err != nil {
		panic(err)
	}
}

// neighborsOf builds count variants of base that each differ from it in
// exactly one layer — the shape of a design-space sweep or an NAS inner
// loop, where consecutive planning requests are near-duplicates. Variant i
// mutates layer i%L (bumping F, or CI for depth-wise layers whose F is
// pinned to 1) and takes a unique name so plan keys never collide.
func neighborsOf(base *model.Network, count int) []*model.Network {
	L := len(base.Layers)
	out := make([]*model.Network, 0, count)
	for i := 0; i < count; i++ {
		layers := append([]layer.Layer(nil), base.Layers...)
		l := layers[i%L]
		delta := 1 + i/L
		if l.Kind == layer.DepthwiseConv {
			layers[i%L] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI+delta, l.FH, l.FW, l.F, l.S, l.P)
		} else {
			layers[i%L] = layer.MustNew(l.Name, l.Kind, l.IH, l.IW, l.CI, l.FH, l.FW, l.F+delta, l.S, l.P)
		}
		n := &model.Network{Name: fmt.Sprintf("%s-n%d", base.Name, i), Layers: layers}
		if err := n.Validate(); err != nil {
			panic(err)
		}
		out = append(out, n)
	}
	return out
}

// workloads mirrors the headline Go benchmarks (bench_test.go) so the JSON
// rows line up with `go test -bench` output by name.
func workloads() []workload {
	resnet, err := model.Builtin("ResNet18")
	if err != nil {
		panic(err)
	}
	nets := model.Builtins()
	neighbors := neighborsOf(resnet, 16)
	batchNets := append([]*model.Network{resnet}, neighbors...)
	dseL := layer.MustNew("c", layer.Conv, 14, 14, 256, 3, 3, 512, 1, 1)
	estL := layer.MustNew("c", layer.Conv, 56, 56, 64, 3, 3, 128, 1, 1)
	cfg64 := policy.Default(64)

	allModels := func(newPlanner func(int, core.Objective) *core.Planner) {
		for _, n := range nets {
			for _, kb := range experiments.PaperSizesKB {
				for _, obj := range []core.Objective{core.MinAccesses, core.MinLatency} {
					mustPlan(newPlanner(kb, obj).Heterogeneous(n))
				}
			}
		}
	}

	return []workload{
		{
			name: "Estimate",
			run:  func() { policy.Estimate(&estL, policy.P5PartialPerChannel, policy.Options{Prefetch: true}, cfg64) },
		},
		{
			name: "PlanModel",
			run: func() {
				if _, err := scratchmem.PlanModel(resnet, scratchmem.PlanOptions{GLBKiloBytes: 64}); err != nil {
					panic(err)
				}
			},
			sequential: func() { mustPlan(seqPlanner(64, core.MinAccesses).Heterogeneous(resnet)) },
		},
		{
			name:       "PlannerHet",
			run:        func() { mustPlan(core.NewPlanner(64, core.MinAccesses).Heterogeneous(resnet)) },
			sequential: func() { mustPlan(seqPlanner(64, core.MinAccesses).Heterogeneous(resnet)) },
		},
		{
			name:       "PlannerAllModels",
			run:        func() { allModels(core.NewPlanner) },
			sequential: func() { allModels(seqPlanner) },
		},
		{
			// NeighborSweep isolates differential planning at the core
			// seam: plan ResNet18 once, then splice each of 16 one-layer
			// variants against that checkpoint with a memo-free
			// single-worker planner, versus planning all 17 from scratch
			// on the same reference planner.
			name: "NeighborSweep",
			run: func() {
				pl := seqPlanner(64, core.MinAccesses)
				_, ck, _, err := pl.HeterogeneousDiffCtx(context.Background(), resnet, nil)
				if err != nil {
					panic(err)
				}
				for _, nn := range neighbors {
					if _, _, _, err := pl.HeterogeneousDiffCtx(context.Background(), nn, ck); err != nil {
						panic(err)
					}
				}
			},
			sequential: func() {
				pl := seqPlanner(64, core.MinAccesses)
				mustPlan(pl.Heterogeneous(resnet))
				for _, nn := range neighbors {
					mustPlan(pl.Heterogeneous(nn))
				}
			},
		},
		{
			// BatchNeighbors is the same neighbor set through the public
			// facade, wired the way /v1/plan/batch wires it: one shared
			// estimate memo plus a batch-local fingerprint index feeding a
			// differ, versus independent PlanModel calls.
			name: "BatchNeighbors",
			run: func() {
				memo := policy.NewMemoCap(4096)
				fp := plancache.NewFingerprints(len(batchNets))
				opts := scratchmem.PlanOptions{GLBKiloBytes: 64}
				for _, nn := range batchNets {
					d := &core.Differ{Lookup: func(chain []policy.LayerKey) *core.Checkpoint {
						ck, _ := fp.Best("bench", chain).(*core.Checkpoint)
						return ck
					}}
					ctx := policy.WithMemo(context.Background(), memo)
					ctx = core.WithDiffer(ctx, d)
					if _, err := scratchmem.PlanModelCtx(ctx, nn, opts, nil); err != nil {
						panic(err)
					}
					if d.Checkpoint != nil {
						fp.Insert(nn.Name, "bench", d.Checkpoint.Chain(), d.Checkpoint)
					}
				}
			},
			sequential: func() {
				for _, nn := range batchNets {
					if _, err := scratchmem.PlanModel(nn, scratchmem.PlanOptions{GLBKiloBytes: 64}); err != nil {
						panic(err)
					}
				}
			},
		},
		{
			name: "Fig5_Accesses",
			run:  func() { experiments.Fig5(experiments.DefaultSetup()) },
		},
		{
			name: "Fig8_Latency",
			run:  func() { experiments.Fig8(experiments.DefaultSetup()) },
		},
		{
			name: "DSELayer",
			run: func() {
				if r := dse.Best(&dseL, cfg64); !r.Feasible {
					panic("dse infeasible")
				}
			},
		},
	}
}

// measure times f like a testing.B loop: warm once, then grow the iteration
// count until one timed run lasts at least minTime, and report ns/op plus
// heap allocations/op (runtime mallocs delta) of the final run. Repeated
// count times, keeping the fastest (least-noisy) run.
func measure(f func(), minTime time.Duration, count int) (nsPerOp, allocsPerOp int64) {
	f() // warm caches, page in code
	var ms runtime.MemStats
	for c := 0; c < count; c++ {
		n := 1
		for {
			runtime.ReadMemStats(&ms)
			mallocs := ms.Mallocs
			start := time.Now()
			for i := 0; i < n; i++ {
				f()
			}
			elapsed := time.Since(start)
			if elapsed >= minTime || n >= 1<<20 {
				ns := elapsed.Nanoseconds() / int64(n)
				if nsPerOp == 0 || ns < nsPerOp {
					runtime.ReadMemStats(&ms)
					nsPerOp = ns
					allocsPerOp = int64(ms.Mallocs-mallocs) / int64(n)
				}
				break
			}
			// Grow geometrically toward the target duration.
			n *= 2
			if elapsed > 0 {
				if pred := int(int64(n) * int64(minTime) / elapsed.Nanoseconds()); pred > n {
					n = pred
				}
			}
		}
	}
	return nsPerOp, allocsPerOp
}

func main() {
	err := run(os.Args[1:], os.Stdout)
	cli.Exit("smm-bench", err)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("smm-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		outPath    = fs.String("o", "BENCH_10.json", "output path for the benchmark document")
		benchTime  = fs.Float64("time", 1.0, "minimum seconds to spend per workload")
		count      = fs.Int("count", 1, "repetitions per workload (fastest run wins)")
		quick      = fs.Bool("quick", false, "single iteration per workload — a CI smoke run, not a measurement")
		against    = fs.String("against", "", "reference document: fail when any shared benchmark slowed past -tolerance")
		tolerance  = fs.Float64("tolerance", 0.10, "allowed fractional slowdown vs -against before failing")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the measured workloads to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile taken after the workloads to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tolerance < 0 {
		return fmt.Errorf("-tolerance must be >= 0, got %g", *tolerance)
	}
	minTime := time.Duration(*benchTime * float64(time.Second))
	if *quick {
		minTime, *count = 0, 1
	}
	if *count < 1 {
		return fmt.Errorf("-count must be >= 1, got %d", *count)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	doc := document{Schema: "smm-bench/v1", GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, w := range workloads() {
		after, allocs := measure(w.run, minTime, *count)
		e := entry{Name: w.name, AfterNsOp: after, AllocsPerOp: allocs}
		if w.sequential != nil {
			e.SequentialNs, _ = measure(w.sequential, minTime, *count)
		}
		if seed, ok := seedNsPerOp[w.name]; ok {
			e.BeforeNsOp, e.BeforeSource = seed, "seed"
		} else if e.SequentialNs > 0 {
			e.BeforeNsOp, e.BeforeSource = e.SequentialNs, "measured"
		} else {
			e.BeforeNsOp, e.BeforeSource = after, "measured"
		}
		if after > 0 {
			e.Speedup = float64(e.BeforeNsOp) / float64(after)
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
		fmt.Fprintf(out, "%-18s before %12d ns/op  after %12d ns/op  %.2fx\n",
			w.name, e.BeforeNsOp, e.AfterNsOp, e.Speedup)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("-memprofile: %w", err)
		}
	}
	if *against != "" {
		return gate(out, &doc, *against, *tolerance)
	}
	return nil
}

// gate compares doc's measurements against the reference document at path:
// any benchmark present in both whose after_ns_per_op grew past
// (1 + tolerance)× the reference fails the gate. Benchmarks only one side
// knows are reported and skipped — adding a workload must not break CI —
// and the error names every regressed benchmark, not just the first.
func gate(out io.Writer, doc *document, path string, tolerance float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-against: %w", err)
	}
	var ref document
	if err := json.Unmarshal(data, &ref); err != nil {
		return fmt.Errorf("-against %s: %w", path, err)
	}
	refNs := make(map[string]int64, len(ref.Benchmarks))
	for _, e := range ref.Benchmarks {
		refNs[e.Name] = e.AfterNsOp
	}
	var regressed []string
	for _, e := range doc.Benchmarks {
		old, ok := refNs[e.Name]
		if !ok || old <= 0 {
			fmt.Fprintf(out, "gate: %-18s not in %s, skipped\n", e.Name, path)
			continue
		}
		ratio := float64(e.AfterNsOp) / float64(old)
		verdict := "ok"
		if ratio > 1+tolerance {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s %.2fx (%d -> %d ns/op)", e.Name, ratio, old, e.AfterNsOp))
		}
		fmt.Fprintf(out, "gate: %-18s %12d -> %12d ns/op  %.2fx  %s\n", e.Name, old, e.AfterNsOp, ratio, verdict)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("performance gate vs %s (tolerance %.0f%%): %s",
			path, tolerance*100, strings.Join(regressed, "; "))
	}
	fmt.Fprintf(out, "gate: all benchmarks within %.0f%% of %s\n", tolerance*100, path)
	return nil
}
