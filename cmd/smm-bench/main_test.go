package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunQuickEmitsValidDocument: a -quick run touches every workload once
// and writes a decodable smm-bench/v1 document with positive timings.
func TestRunQuickEmitsValidDocument(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_5.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-o", out}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("document does not decode: %v", err)
	}
	if doc.Schema != "smm-bench/v1" {
		t.Errorf("schema = %q, want smm-bench/v1", doc.Schema)
	}
	if len(doc.Benchmarks) != len(workloads()) {
		t.Fatalf("document has %d rows, want %d", len(doc.Benchmarks), len(workloads()))
	}
	for _, e := range doc.Benchmarks {
		if e.Name == "" || e.AfterNsOp <= 0 || e.BeforeNsOp <= 0 || e.Speedup <= 0 {
			t.Errorf("row %+v carries non-positive measurements", e)
		}
		if e.BeforeSource != "seed" && e.BeforeSource != "measured" {
			t.Errorf("row %s: before_source = %q", e.Name, e.BeforeSource)
		}
	}
}

// TestRunRejectsBadCount: the flag seam fails loudly instead of dividing by
// zero later.
func TestRunRejectsBadCount(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-count", "0", "-o", filepath.Join(t.TempDir(), "x.json")}, &buf); err == nil {
		t.Fatal("run accepted -count 0")
	}
}
