package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunQuickEmitsValidDocument: a -quick run touches every workload once
// and writes a decodable smm-bench/v1 document with positive timings.
func TestRunQuickEmitsValidDocument(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_5.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-o", out}, &buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("document does not decode: %v", err)
	}
	if doc.Schema != "smm-bench/v1" {
		t.Errorf("schema = %q, want smm-bench/v1", doc.Schema)
	}
	if len(doc.Benchmarks) != len(workloads()) {
		t.Fatalf("document has %d rows, want %d", len(doc.Benchmarks), len(workloads()))
	}
	for _, e := range doc.Benchmarks {
		if e.Name == "" || e.AfterNsOp <= 0 || e.BeforeNsOp <= 0 || e.Speedup <= 0 {
			t.Errorf("row %+v carries non-positive measurements", e)
		}
		if e.BeforeSource != "seed" && e.BeforeSource != "measured" {
			t.Errorf("row %s: before_source = %q", e.Name, e.BeforeSource)
		}
	}
}

// TestRunRejectsBadCount: the flag seam fails loudly instead of dividing by
// zero later.
func TestRunRejectsBadCount(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-count", "0", "-o", filepath.Join(t.TempDir(), "x.json")}, &buf); err == nil {
		t.Fatal("run accepted -count 0")
	}
}

// writeRefDoc writes a reference document whose per-benchmark after_ns_per_op
// is this machine's own -quick measurement scaled by factor, so gate tests
// are hermetic to the host's speed.
func writeRefDoc(t *testing.T, factor float64) (ref, out string) {
	t.Helper()
	dir := t.TempDir()
	out = filepath.Join(dir, "new.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-o", out}, &buf); err != nil {
		t.Fatalf("baseline run: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for i := range doc.Benchmarks {
		doc.Benchmarks[i].AfterNsOp = int64(float64(doc.Benchmarks[i].AfterNsOp) * factor)
	}
	refData, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	ref = filepath.Join(dir, "ref.json")
	if err := os.WriteFile(ref, refData, 0o644); err != nil {
		t.Fatal(err)
	}
	return ref, filepath.Join(dir, "gated.json")
}

// TestGatePassesAgainstGenerousReference: a reference 1000x slower than this
// machine can never trip the gate, whatever the noise.
func TestGatePassesAgainstGenerousReference(t *testing.T) {
	ref, out := writeRefDoc(t, 1000)
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-o", out, "-against", ref}, &buf); err != nil {
		t.Fatalf("gate failed against a 1000x-slower reference: %v\n%s", err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("gate: all benchmarks within")) {
		t.Errorf("gate verdict line missing from output:\n%s", buf.String())
	}
}

// TestGateFailsAgainstImpossibleReference: a reference 1000x faster than this
// machine must fail every benchmark, and the error names the regressions.
func TestGateFailsAgainstImpossibleReference(t *testing.T) {
	ref, out := writeRefDoc(t, 0.001)
	var buf bytes.Buffer
	err := run([]string{"-quick", "-o", out, "-against", ref}, &buf)
	if err == nil {
		t.Fatalf("gate passed against a 1000x-faster reference:\n%s", buf.String())
	}
	if want := "performance gate"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("gate error %q does not mention %q", err, want)
	}
}

// TestGateMissingReference: pointing -against at a nonexistent file is a
// loud configuration error, not a silent pass.
func TestGateMissingReference(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-quick", "-o", filepath.Join(t.TempDir(), "x.json"),
		"-against", filepath.Join(t.TempDir(), "missing.json")}, &buf)
	if err == nil {
		t.Fatal("gate passed with a missing reference document")
	}
}
