package scratchmem

// One benchmark per paper table and figure: each bench regenerates the
// artefact through the same experiment drivers the CLI uses and reports the
// headline quantity as a custom metric, so `go test -bench` doubles as a
// reproduction run. Micro-benchmarks for the planner, the estimators and
// the functional engine follow.

import (
	"context"
	"math/rand"
	"testing"

	"scratchmem/internal/core"
	"scratchmem/internal/dse"
	"scratchmem/internal/engine"
	"scratchmem/internal/experiments"
	"scratchmem/internal/layer"
	"scratchmem/internal/model"
	"scratchmem/internal/policy"
	"scratchmem/internal/scalesim"
	"scratchmem/internal/simulate"
	"scratchmem/internal/tensor"
)

func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	return s
}

func BenchmarkTable2_Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Table2(); t.Rows() != 6 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkTable3_PolicyMemory(b *testing.B) {
	var maxKB float64
	for i := 0; i < b.N; i++ {
		data, _ := experiments.Table3()
		for _, d := range data {
			if d.Intra > maxKB {
				maxKB = d.Intra
			}
		}
	}
	b.ReportMetric(maxKB, "max_intra_kB")
}

func BenchmarkTable4_PolicyMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Table4(64); t.Rows() != 6 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig3_MemoryBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Fig3(); t.Rows() != 21 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig5_Accesses(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.Fig5(benchSetup())
		for _, c := range cells {
			if c.Model == "ResNet18" && c.SizeKB == 64 {
				best := int64(0)
				for _, v := range c.Baselines {
					if best == 0 || v < best {
						best = v
					}
				}
				red = 100 * (1 - float64(c.Het)/float64(best))
			}
		}
	}
	b.ReportMetric(red, "resnet18_64kB_reduction_%")
}

func BenchmarkFig6_HetBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if t := experiments.Fig6(64); t.Rows() != 21 {
			b.Fatal("wrong row count")
		}
	}
}

func BenchmarkFig7_DataWidth(b *testing.B) {
	var ben float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.Fig7(benchSetup())
		for _, c := range cells {
			if c.WidthBits == 32 && c.SizeKB == 64 {
				ben = c.BenefitPct
			}
		}
	}
	b.ReportMetric(ben, "32bit_64kB_het_vs_hom_%")
}

func BenchmarkFig8_Latency(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.Fig8(benchSetup())
		for _, c := range cells {
			if r := 100 * (1 - float64(c.HetL)/float64(c.Baseline)); r > best {
				best = r
			}
		}
	}
	b.ReportMetric(best, "max_latency_reduction_%")
}

func BenchmarkFig9_AccessVsLatency(b *testing.B) {
	var lat float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.Fig9(benchSetup(), 64)
		for _, c := range cells {
			if c.LatencyBenefitPct > lat {
				lat = c.LatencyBenefitPct
			}
		}
	}
	b.ReportMetric(lat, "max_hetl_latency_benefit_%")
}

func BenchmarkFig10_Prefetch(b *testing.B) {
	var cov float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.Fig10(benchSetup(), "MobileNet")
		cov = cells[len(cells)-1].CoveragePct
	}
	b.ReportMetric(cov, "prefetch_coverage_1MB_%")
}

func BenchmarkFig11_InterLayer(b *testing.B) {
	var ben float64
	for i := 0; i < b.N; i++ {
		cells, _, _ := experiments.Fig11(benchSetup(), "MnasNet")
		ben = cells[len(cells)-1].AccessBenefitPct
	}
	b.ReportMetric(ben, "interlayer_access_benefit_1MB_%")
}

// BenchmarkExtEnergy regenerates the energy extension table.
func BenchmarkExtEnergy(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.ExtEnergy(benchSetup())
		for _, c := range cells {
			if c.Model == "ResNet18" && c.SizeKB == 64 {
				red = c.ReductionPct
			}
		}
	}
	b.ReportMetric(red, "resnet18_64kB_energy_reduction_%")
}

// BenchmarkExtBatch regenerates the batching extension.
func BenchmarkExtBatch(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.ExtBatch(benchSetup(), "GoogLeNet", 256)
		first, last := cells[0], cells[len(cells)-1]
		saved = 100 * (1 - float64(last.PerInputAccessElem)/float64(first.PerInputAccessElem))
	}
	b.ReportMetric(saved, "batch16_per_input_saving_%")
}

// BenchmarkExtInterLayerAblation regenerates the DP-vs-greedy ablation.
func BenchmarkExtInterLayerAblation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.ExtInterLayerAblation(benchSetup())
		for _, c := range cells {
			if c.DPGainPct > gain {
				gain = c.DPGainPct
			}
		}
	}
	b.ReportMetric(gain, "max_dp_gain_%")
}

// BenchmarkExtTenancy regenerates the multi-tenancy extension.
func BenchmarkExtTenancy(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		cell, _ := experiments.ExtTenancy(benchSetup(), "ResNet18", "MobileNet", 128)
		gain = cell.SharingGainPct
	}
	b.ReportMetric(gain, "timeshare_gain_%")
}

// BenchmarkExtDSE regenerates the Het-vs-DSE near-optimality comparison.
func BenchmarkExtDSE(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.ExtDSE(benchSetup(), 64)
		for _, c := range cells {
			if c.GapPct > worst {
				worst = c.GapPct
			}
		}
	}
	b.ReportMetric(worst, "max_gap_vs_dse_%")
}

// BenchmarkExtDataflow regenerates the dataflow comparison.
func BenchmarkExtDataflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.ExtDataflow(benchSetup(), 64)
		if len(cells) != 18 {
			b.Fatal("wrong cell count")
		}
	}
}

// BenchmarkExtSensitivity regenerates the hardware co-design sweep.
func BenchmarkExtSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _ := experiments.ExtSensitivity(benchSetup(), "MobileNetV2", 64)
		if len(cells) != 9 {
			b.Fatal("wrong cell count")
		}
	}
}

// BenchmarkDSELayer measures one layer's exhaustive tiling search — the
// planning-cost comparison behind ExtDSE.
func BenchmarkDSELayer(b *testing.B) {
	l := layer.MustNew("c", layer.Conv, 14, 14, 256, 3, 3, 512, 1, 1)
	cfg := policy.Default(64)
	for i := 0; i < b.N; i++ {
		if r := dse.Best(&l, cfg); !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSimulateNetwork measures the end-to-end plan simulation.
func BenchmarkSimulateNetwork(b *testing.B) {
	n, _ := model.Builtin("ResNet18")
	p, err := core.NewPlanner(64, core.MinAccesses).Heterogeneous(n)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(p, simulate.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerHet measures the paper's "one minute for all models"
// claim: the full heterogeneous planning of one ResNet18 configuration.
func BenchmarkPlannerHet(b *testing.B) {
	n, _ := model.Builtin("ResNet18")
	pl := core.NewPlanner(64, core.MinAccesses)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Heterogeneous(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanModel is the context-free façade path on the reference
// configuration (ResNet18 @ 64 kB); its _Ctx twin below measures the same
// work through the context-aware path. Compare them to verify that ctx
// plumbing (one ctx.Err() poll per layer, nil progress hook) costs within
// noise of the legacy path — the estimator math itself never sees a context.
func BenchmarkPlanModel(b *testing.B) {
	n, _ := model.Builtin("ResNet18")
	opts := PlanOptions{GLBKiloBytes: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanModel(n, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanModel_Ctx is BenchmarkPlanModel through PlanModelCtx with a
// background context and nil progress hook.
func BenchmarkPlanModel_Ctx(b *testing.B) {
	n, _ := model.Builtin("ResNet18")
	opts := PlanOptions{GLBKiloBytes: 64}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanModelCtx(ctx, n, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerAllModels plans all six models at all five sizes for both
// objectives — the paper's whole §5.1/§5.2 planning workload.
func BenchmarkPlannerAllModels(b *testing.B) {
	nets := model.Builtins()
	for i := 0; i < b.N; i++ {
		for _, n := range nets {
			for _, kb := range experiments.PaperSizesKB {
				for _, obj := range []core.Objective{core.MinAccesses, core.MinLatency} {
					if _, err := core.NewPlanner(kb, obj).Heterogeneous(n); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// BenchmarkEstimate measures one policy estimation — the planner's inner
// loop.
func BenchmarkEstimate(b *testing.B) {
	l := layer.MustNew("c", layer.Conv, 56, 56, 64, 3, 3, 128, 1, 1)
	cfg := policy.Default(64)
	for i := 0; i < b.N; i++ {
		policy.Estimate(&l, policy.P5PartialPerChannel, policy.Options{Prefetch: true}, cfg)
	}
}

// BenchmarkBaselineNetwork measures the analytical SCALE-Sim baseline over
// a whole network (the artefact the paper contrasts with hours of trace
// simulation).
func BenchmarkBaselineNetwork(b *testing.B) {
	n, _ := model.Builtin("GoogLeNet")
	cfg := scalesim.Split("sa_50_50", 64, 50, 8)
	for i := 0; i < b.N; i++ {
		if _, err := scalesim.SimulateNetwork(n, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineTrace measures the element-exact trace mode on a small
// layer, showing why analytical estimation wins.
func BenchmarkBaselineTrace(b *testing.B) {
	l := layer.MustNew("c", layer.Conv, 28, 28, 16, 3, 3, 32, 1, 0)
	cfg := scalesim.Split("sa_50_50", 64, 50, 8)
	for i := 0; i < b.N; i++ {
		if _, err := scalesim.Trace(&l, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineLayer measures the functional execution of one layer under
// policy 1 (real MACs through the scratchpad model).
func BenchmarkEngineLayer(b *testing.B) {
	l := layer.MustNew("c", layer.Conv, 28, 28, 16, 3, 3, 32, 1, 1)
	cfg := policy.Default(256)
	est := policy.Estimate(&l, policy.P1IfmapReuse, policy.Options{}, cfg)
	r := rand.New(rand.NewSource(1))
	in := tensor.New(l.IH, l.IW, l.CI).Random(r)
	w := tensor.NewFilters(l.FH, l.FW, l.CI, l.F).Random(r)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Run(&l, &est, cfg, in, w); err != nil {
			b.Fatal(err)
		}
	}
}
